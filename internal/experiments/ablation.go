package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

// This file holds reproduction-specific ablations for design choices this
// implementation had to make beyond the paper's text (DESIGN.md §2):
// the adaptive similarity threshold and the KNN/IL interplay.

// AblationTauResult compares the fixed similarity threshold τ (Eq. 7 as
// written) against the per-batch adaptive quantile threshold this
// implementation defaults to.
type AblationTauResult struct {
	Weights  []float64
	Fixed    []float64 // mean D-error with Tau = 0.97
	Adaptive []float64 // mean D-error with TauQuantile = 0.7
}

// AblationTau trains two advisors differing only in threshold policy.
func AblationTau(c *Corpus) (*AblationTauResult, error) {
	cfgA := c.AdvisorConfig()
	advAdaptive, err := core.Train(c.TrainSamples(), cfgA)
	if err != nil {
		return nil, err
	}
	cfgF := c.AdvisorConfig()
	cfgF.TauQuantile = 0
	advFixed, err := core.Train(c.TrainSamples(), cfgF)
	if err != nil {
		return nil, err
	}
	res := &AblationTauResult{Weights: []float64{1.0, 0.9, 0.7, 0.5}}
	for _, wa := range res.Weights {
		res.Adaptive = append(res.Adaptive, metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return advAdaptive.Recommend(ld.Graph, wa).Model
		})))
		res.Fixed = append(res.Fixed, metrics.Mean(EvalSelector(c.Test, wa, func(ld *LabeledDataset) int {
			return advFixed.Recommend(ld.Graph, wa).Model
		})))
	}
	return res, nil
}

// Render prints the comparison.
func (r *AblationTauResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — fixed vs adaptive similarity threshold (mean D-error)\n")
	b.WriteString(row("wa", "adaptive", "   fixed"))
	b.WriteString("\n")
	for i, wa := range r.Weights {
		b.WriteString(row(fmt.Sprintf("%.1f", wa),
			fmt.Sprintf("%8.4f", r.Adaptive[i]),
			fmt.Sprintf("%8.4f", r.Fixed[i])))
		b.WriteString("\n")
	}
	return b.String()
}
