package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestParetoColumnUniformWhenSkewZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := ParetoColumn(rng, 20000, 10, 0)
	counts := make([]int, 11)
	for _, v := range data {
		if v < 1 || v > 10 {
			t.Fatalf("value %d outside domain [1,10]", v)
		}
		counts[v]++
	}
	for v := 1; v <= 10; v++ {
		frac := float64(counts[v]) / 20000
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("value %d frequency %.3f, want ~0.1", v, frac)
		}
	}
}

func TestParetoColumnSkewConcentratesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	low := ParetoColumn(rng, 20000, 50, 0.2)
	high := ParetoColumn(rng, 20000, 50, 1.0)
	topFrac := func(data []int64) float64 {
		n := 0
		for _, v := range data {
			if v <= 5 {
				n++
			}
		}
		return float64(n) / float64(len(data))
	}
	if topFrac(high) <= topFrac(low) {
		t.Fatalf("higher skew should concentrate mass on low values: %.3f vs %.3f",
			topFrac(high), topFrac(low))
	}
	if topFrac(high) < 0.5 {
		t.Fatalf("skew=1 should put most mass in the head, got %.3f", topFrac(high))
	}
}

func TestParetoColumnDomainProperty(t *testing.T) {
	// Property: all values in [1, domain] for any skew in [0,1].
	f := func(seed int64, rawSkew uint8, rawDomain uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		skew := float64(rawSkew) / 255
		domain := 2 + int(rawDomain)%100
		data := ParetoColumn(rng, 200, domain, skew)
		for _, v := range data {
			if v < 1 || v > int64(domain) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateMatchesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range []float64{0.2, 0.5, 0.9} {
		src := ParetoColumn(rng, 10000, 100, 0)
		dst := ParetoColumn(rng, 10000, 100, 0)
		Correlate(rng, src, dst, r)
		a := dataset.NewColumn("a", src)
		b := dataset.NewColumn("b", dst)
		got := dataset.EqualFraction(a, b)
		// Expected: r plus accidental equality (1-r)/domain ≈ 0.01.
		if math.Abs(got-r) > 0.05 {
			t.Fatalf("r=%.1f: measured equal fraction %.3f", r, got)
		}
	}
}

func TestPopulateFKPortionAndContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pk := make([]int64, 500)
	for i := range pk {
		pk[i] = int64(i + 1)
	}
	for _, p := range []float64{0.3, 0.7, 1.0} {
		fk := PopulateFK(rng, pk, 5000, p)
		pkSet := map[int64]bool{}
		for _, v := range pk {
			pkSet[v] = true
		}
		distinct := map[int64]bool{}
		for _, v := range fk {
			if !pkSet[v] {
				t.Fatalf("p=%.1f: FK value %d not in PK", p, v)
			}
			distinct[v] = true
		}
		ratio := float64(len(distinct)) / float64(len(pk))
		if ratio > p+0.01 {
			t.Fatalf("p=%.1f: FK covers %.3f of PK, more than requested", p, ratio)
		}
		// With 10x oversampling nearly the whole portion appears.
		if ratio < p*0.85 {
			t.Fatalf("p=%.1f: FK covers only %.3f of PK", p, ratio)
		}
	}
}

func TestGenerateSingleTable(t *testing.T) {
	p := DefaultParams(5)
	d, err := Generate("t", p)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTables() != 1 || len(d.FKs) != 0 {
		t.Fatalf("single-table dataset has %d tables, %d fks", d.NumTables(), len(d.FKs))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMultiTableConnected(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := DefaultParams(seed)
		p.Tables = 2 + int(seed%4)
		d, err := Generate("t", p)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The FK graph must connect all tables.
		adj := map[int][]int{}
		for _, fk := range d.FKs {
			adj[fk.FromTable] = append(adj[fk.FromTable], fk.ToTable)
			adj[fk.ToTable] = append(adj[fk.ToTable], fk.FromTable)
		}
		seen := map[int]bool{0: true}
		stack := []int{0}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if len(seen) != d.NumTables() {
			t.Fatalf("seed %d: join graph disconnected (%d of %d reachable)",
				seed, len(seen), d.NumTables())
		}
		// FK correlations recorded on edges must roughly match measured.
		measured := dataset.MeasuredFKCorrelations(d)
		for i, fk := range d.FKs {
			if math.Abs(measured[i]-fk.Correlation) > 0.2 {
				t.Fatalf("seed %d fk %d: recorded corr %.2f, measured %.2f",
					seed, i, fk.Correlation, measured[i])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(99)
	p.Tables = 3
	d1, _ := Generate("a", p)
	d2, _ := Generate("b", p)
	if d1.NumTables() != d2.NumTables() {
		t.Fatal("same seed produced different table counts")
	}
	for ti := range d1.Tables {
		for ci := range d1.Tables[ti].Cols {
			a := d1.Tables[ti].Cols[ci].Data
			b := d2.Tables[ti].Cols[ci].Data
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed produced different data at t%d c%d row %d", ti, ci, i)
				}
			}
		}
	}
}

func TestGenerateCorpus(t *testing.T) {
	base := DefaultParams(0)
	base.MinRows, base.MaxRows = 50, 100
	corpus, err := GenerateCorpus(12, 4, base, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 12 {
		t.Fatalf("corpus size %d, want 12", len(corpus))
	}
	counts := map[int]int{}
	for _, d := range corpus {
		counts[d.NumTables()]++
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(counts) < 2 {
		t.Fatal("corpus lacks table-count diversity")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Tables: 0, MinCols: 1, MaxCols: 2, MinRows: 1, MaxRows: 2, Domain: 5},
		{Tables: 1, MinCols: 3, MaxCols: 2, MinRows: 1, MaxRows: 2, Domain: 5},
		{Tables: 1, MinCols: 1, MaxCols: 2, MinRows: 5, MaxRows: 2, Domain: 5},
		{Tables: 1, MinCols: 1, MaxCols: 2, MinRows: 1, MaxRows: 2, Domain: 1},
		{Tables: 1, MinCols: 1, MaxCols: 2, MinRows: 1, MaxRows: 2, Domain: 5, SkewHi: 2},
	}
	for i, p := range bad {
		if _, err := Generate("x", p); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestRealWorldGenerators(t *testing.T) {
	imdb := IMDBLike(1)
	stats := STATSLike(1)
	power := PowerLike(1)
	if imdb.NumTables() != 6 {
		t.Fatalf("imdb-like has %d tables, want 6", imdb.NumTables())
	}
	if stats.NumTables() != 8 {
		t.Fatalf("stats-like has %d tables, want 8", stats.NumTables())
	}
	if power.NumTables() != 1 {
		t.Fatalf("power-like has %d tables, want 1", power.NumTables())
	}
	for _, d := range []*dataset.Dataset{imdb, stats, power} {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
	if len(imdb.FKs) != 5 || len(stats.FKs) != 7 {
		t.Fatalf("fk counts: imdb %d stats %d", len(imdb.FKs), len(stats.FKs))
	}
}

func TestSplitProtocol(t *testing.T) {
	src := IMDBLike(2)
	splits := Split(src, 20, 5, 3)
	if len(splits) != 20 {
		t.Fatalf("got %d splits, want 20", len(splits))
	}
	for i, sub := range splits {
		if err := sub.Validate(); err != nil {
			t.Fatalf("split %d: %v", i, err)
		}
		if sub.NumTables() < 1 || sub.NumTables() > 5 {
			t.Fatalf("split %d has %d tables", i, sub.NumTables())
		}
		// Every FK must reference valid kept columns.
		for _, fk := range sub.FKs {
			if fk.FromTable >= sub.NumTables() || fk.ToTable >= sub.NumTables() {
				t.Fatalf("split %d: dangling FK", i)
			}
		}
		// Non-key column budget: 1-2 per table plus key columns.
		for _, tbl := range sub.Tables {
			nonKey := 0
			fkCols := map[int]bool{}
			for _, fk := range sub.FKs {
				for ti2, t2 := range sub.Tables {
					if t2 == tbl && fk.FromTable == ti2 {
						fkCols[fk.FromCol] = true
					}
				}
			}
			for ci := range tbl.Cols {
				if ci != tbl.PKCol && !fkCols[ci] {
					nonKey++
				}
			}
			if nonKey > 3 {
				t.Fatalf("split %d table %s keeps %d non-key columns", i, tbl.Name, nonKey)
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	src := STATSLike(4)
	a := Split(src, 5, 3, 11)
	b := Split(src, 5, 3, 11)
	for i := range a {
		if a[i].NumTables() != b[i].NumTables() {
			t.Fatal("same seed produced different splits")
		}
	}
}

func TestSyntheticEmbeddingsShapeAndDeterminism(t *testing.T) {
	a := SyntheticEmbeddings(500, 16, 8, 3)
	b := SyntheticEmbeddings(500, 16, 8, 3)
	if len(a) != 500 {
		t.Fatalf("got %d vectors, want 500", len(a))
	}
	for i := range a {
		if len(a[i]) != 16 {
			t.Fatalf("vector %d has dim %d, want 16", i, len(a[i]))
		}
		for f := range a[i] {
			if a[i][f] != b[i][f] {
				t.Fatal("same seed produced different embeddings")
			}
		}
	}
	if c := SyntheticEmbeddings(100, 4, 8, 4); len(c) != 100 {
		t.Fatalf("got %d vectors, want 100", len(c))
	}
	// Clustered structure: the spread across cluster centers (sigma 6)
	// dwarfs within-cluster noise (sigma 1), so the corpus variance must
	// clearly exceed the isotropic unit variance.
	var mean, sq float64
	for _, v := range a {
		mean += v[0]
	}
	mean /= float64(len(a))
	for _, v := range a {
		d := v[0] - mean
		sq += d * d
	}
	if variance := sq / float64(len(a)); variance < 4 {
		t.Fatalf("corpus variance %.2f looks isotropic, want clustered spread", variance)
	}
}
