// Package datagen implements the paper's training-data generation stage
// (Section IV-A): single- and multi-table synthetic dataset generation
// driven by three data features — column skewness (F1, Pareto-family
// distribution), column correlation (F2, positional value equality with
// probability r), and PK-FK join correlation (F3, FK values drawn from a
// p-fraction of the referenced PK values).
//
// It also provides "real-world-like" generators that stand in for the
// paper's IMDB-light and STATS-light datasets: fixed-seed multi-table
// datasets whose value distributions (mixtures, plateaus, heavy tails) fall
// outside the Pareto training manifold, split into 20 sub-datasets following
// the paper's IMDB-20/STATS-20 protocol.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Params controls the generation of one synthetic dataset.
type Params struct {
	// Tables is the number of tables (>= 1).
	Tables int
	// MinCols and MaxCols bound the per-table column count, inclusive.
	// Tables with a primary key receive one extra key column.
	MinCols, MaxCols int
	// MinRows and MaxRows bound the per-table row count, inclusive.
	MinRows, MaxRows int
	// Domain is the maximum domain size d of a generated column; actual
	// per-column domains are drawn in [2, Domain].
	Domain int
	// SkewLo and SkewHi bound the per-column skew parameter in [0,1];
	// skew = 0 yields a uniform distribution (F1).
	SkewLo, SkewHi float64
	// CorrLo and CorrHi bound the adjacent-column correlation r (F2).
	CorrLo, CorrHi float64
	// JoinLo and JoinHi bound the PK-FK join correlation p (F3),
	// the paper's [jmin, jmax].
	JoinLo, JoinHi float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultParams returns generation parameters mirroring the paper's
// synthetic-dataset regime (1-5 tables, 2-25 columns total, 10K-50K rows,
// bounded domain), scaled so that a full labeling run stays CPU-friendly.
func DefaultParams(seed int64) Params {
	return Params{
		Tables:  1,
		MinCols: 2, MaxCols: 5,
		MinRows: 800, MaxRows: 2500,
		Domain: 120,
		SkewLo: 0, SkewHi: 1,
		CorrLo: 0, CorrHi: 1,
		JoinLo: 0.2, JoinHi: 1,
		Seed: seed,
	}
}

func (p Params) validate() error {
	if p.Tables < 1 {
		return fmt.Errorf("datagen: Tables must be >= 1, got %d", p.Tables)
	}
	if p.MinCols < 1 || p.MaxCols < p.MinCols {
		return fmt.Errorf("datagen: invalid column bounds [%d,%d]", p.MinCols, p.MaxCols)
	}
	if p.MinRows < 1 || p.MaxRows < p.MinRows {
		return fmt.Errorf("datagen: invalid row bounds [%d,%d]", p.MinRows, p.MaxRows)
	}
	if p.Domain < 2 {
		return fmt.Errorf("datagen: Domain must be >= 2, got %d", p.Domain)
	}
	if p.SkewLo < 0 || p.SkewHi > 1 || p.SkewHi < p.SkewLo {
		return fmt.Errorf("datagen: invalid skew bounds [%g,%g]", p.SkewLo, p.SkewHi)
	}
	if p.JoinLo < 0 || p.JoinHi > 1 || p.JoinHi < p.JoinLo {
		return fmt.Errorf("datagen: invalid join-correlation bounds [%g,%g]", p.JoinLo, p.JoinHi)
	}
	return nil
}

// ParetoColumn generates k values over the integer domain [1, domain]
// following the paper's F1 skewed distribution. skew = 0 yields a uniform
// distribution over the domain; as skew grows toward 1 the probability mass
// concentrates on the low values, matching the Pareto-family density of
// Eq. 1 (we realize it as a power-law probability mass function over the
// bounded domain, which is the discrete equivalent).
func ParetoColumn(rng *rand.Rand, k, domain int, skew float64) []int64 {
	data := make([]int64, k)
	if skew <= 1e-9 {
		for i := range data {
			data[i] = 1 + int64(rng.Intn(domain))
		}
		return data
	}
	// Power-law pmf: P(v) ∝ v^(-alpha), alpha grows with skew. alpha in
	// (0, 3]: skew=1 gives a strongly Zipfian column, skew→0 approaches
	// uniform.
	alpha := 3 * skew
	cdf := make([]float64, domain)
	var sum float64
	for v := 1; v <= domain; v++ {
		sum += math.Pow(float64(v), -alpha)
		cdf[v-1] = sum
	}
	for i := range data {
		u := rng.Float64() * sum
		// Binary search the CDF.
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		data[i] = int64(lo + 1)
	}
	return data
}

// Correlate applies the paper's F2 column correlation in place: for each
// row position, with probability r the value of dst is replaced by the
// value of src at the same position, so the measured EqualFraction of the
// pair approaches r (plus the baseline accidental-equality rate).
func Correlate(rng *rand.Rand, src, dst []int64, r float64) {
	n := len(src)
	if n != len(dst) {
		panic(fmt.Sprintf("datagen: Correlate length mismatch %d vs %d", n, len(dst)))
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < r {
			dst[i] = src[i]
		}
	}
}

// SingleTable generates one table per the paper's single-table procedure:
// n columns of k rows each, every column drawn with its own skew in
// [SkewLo, SkewHi] over a per-column domain, then every adjacent column
// pair correlated with its own r in [CorrLo, CorrHi].
func SingleTable(rng *rand.Rand, name string, p Params) *dataset.Table {
	ncols := p.MinCols + rng.Intn(p.MaxCols-p.MinCols+1)
	rows := p.MinRows + rng.Intn(p.MaxRows-p.MinRows+1)
	t := &dataset.Table{Name: name, PKCol: -1}
	for c := 0; c < ncols; c++ {
		domain := 2 + rng.Intn(p.Domain-1)
		skew := p.SkewLo + rng.Float64()*(p.SkewHi-p.SkewLo)
		col := dataset.NewColumn(fmt.Sprintf("col%d", c), ParetoColumn(rng, rows, domain, skew))
		t.Cols = append(t.Cols, col)
	}
	for c := 0; c+1 < ncols; c++ {
		r := p.CorrLo + rng.Float64()*(p.CorrHi-p.CorrLo)
		Correlate(rng, t.Cols[c].Data, t.Cols[c+1].Data, r)
	}
	// Beyond the adjacent chain, some tables get non-tree correlation
	// topologies: extra random pairs that close triangles. Chains are
	// exactly representable by tree-structured models (Chow-Liu); loops
	// are not, which keeps the model zoo's relative strengths diverse —
	// the property the paper's Figure 1 motivation rests on.
	if ncols >= 3 && rng.Float64() < 0.5 {
		extra := 1 + rng.Intn(2)
		for e := 0; e < extra; e++ {
			a := rng.Intn(ncols)
			b := rng.Intn(ncols)
			if a == b {
				continue
			}
			r := p.CorrLo + rng.Float64()*(p.CorrHi-p.CorrLo)
			Correlate(rng, t.Cols[a].Data, t.Cols[b].Data, r)
		}
	}
	return t
}

// addPrimaryKey prepends a unique key column (values 1..rows) to a table
// and marks it as the primary key.
func addPrimaryKey(t *dataset.Table) {
	rows := t.Rows()
	pk := make([]int64, rows)
	for i := range pk {
		pk[i] = int64(i + 1)
	}
	t.Cols = append([]*dataset.Column{dataset.NewColumn("id", pk)}, t.Cols...)
	t.PKCol = 0
}

// PopulateFK implements the paper's F3 join correlation: it draws a
// p-fraction of the PK column's distinct values without replacement and
// fills a fresh FK column of length rows by sampling uniformly from that
// portion. Higher p means the FK covers a larger portion of the PK domain.
func PopulateFK(rng *rand.Rand, pk []int64, rows int, p float64) []int64 {
	distinct := make(map[int64]struct{}, len(pk))
	for _, v := range pk {
		distinct[v] = struct{}{}
	}
	vals := make([]int64, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	// Sort before shuffling: map iteration order would otherwise make
	// generation non-deterministic under a fixed seed.
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	take := int(math.Ceil(p * float64(len(vals))))
	if take < 1 {
		take = 1
	}
	if take > len(vals) {
		take = len(vals)
	}
	portion := vals[:take]
	fk := make([]int64, rows)
	// Seed each portion value once (as far as rows allow) so the measured
	// coverage matches the requested p, then fill the rest uniformly.
	for i := range fk {
		if i < len(portion) {
			fk[i] = portion[i]
		} else {
			fk[i] = portion[rng.Intn(len(portion))]
		}
	}
	rng.Shuffle(len(fk), func(i, j int) { fk[i], fk[j] = fk[j], fk[i] })
	return fk
}

// Generate produces one synthetic dataset per the paper's multi-table
// procedure: generate Tables tables independently, pick main tables and
// assign primary keys, then correlate every non-main table (and possibly
// main tables) to a main table through a PK-FK edge with join correlation
// p in [JoinLo, JoinHi]. With Tables = 1 it degenerates to single-table
// generation.
func Generate(name string, p Params) (*dataset.Dataset, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := &dataset.Dataset{Name: name}
	for i := 0; i < p.Tables; i++ {
		d.Tables = append(d.Tables, SingleTable(rng, fmt.Sprintf("table%d", i), p))
	}
	if p.Tables == 1 {
		return d, d.Validate()
	}

	// Select m main tables (at least one, at most Tables-1 so there is
	// always at least one pure-FK table) and give each a primary key.
	m := 1
	if p.Tables > 2 {
		m += rng.Intn(p.Tables - 1)
	}
	mains := rng.Perm(p.Tables)[:m]
	isMain := make(map[int]bool, m)
	for _, idx := range mains {
		addPrimaryKey(d.Tables[idx])
		isMain[idx] = true
	}

	// Every non-main table gets an FK to a random main table; main tables
	// after the first reference an earlier main, so the join graph is
	// always connected (a tree over the mains with stars hanging off).
	mainPos := map[int]int{}
	for pos, idx := range mains {
		mainPos[idx] = pos
	}
	for ti := 0; ti < p.Tables; ti++ {
		var target int
		if isMain[ti] {
			pos := mainPos[ti]
			if pos == 0 {
				continue // the root main table is referenced-only
			}
			target = mains[rng.Intn(pos)] // an earlier main: keeps a tree
		} else {
			target = mains[rng.Intn(m)]
		}
		pcorr := p.JoinLo + rng.Float64()*(p.JoinHi-p.JoinLo)
		pkCol := d.Tables[target].Col(d.Tables[target].PKCol)
		fkData := PopulateFK(rng, pkCol.Data, d.Tables[ti].Rows(), pcorr)
		fkName := fmt.Sprintf("fk_%s", d.Tables[target].Name)
		fkCol := dataset.NewColumn(fkName, fkData)
		d.Tables[ti].Cols = append(d.Tables[ti].Cols, fkCol)
		// Record the measured correlation: when the FK table has fewer
		// rows than the requested portion, the achievable coverage is
		// capped at rows/|PK|, and features must reflect the data.
		d.FKs = append(d.FKs, dataset.ForeignKey{
			FromTable: ti, FromCol: d.Tables[ti].NumCols() - 1,
			ToTable: target, ToCol: d.Tables[target].PKCol,
			Correlation: dataset.JoinCorrelation(fkCol, pkCol),
		})
	}
	return d, d.Validate()
}

// GenerateCorpus generates n datasets with varied table counts (1..maxTables)
// and per-dataset random parameters, seeded deterministically from seed.
// This is the paper's Stage 1 corpus used for training-data generation.
func GenerateCorpus(n, maxTables int, base Params, seed int64) ([]*dataset.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dataset.Dataset, 0, n)
	for i := 0; i < n; i++ {
		p := base
		p.Tables = 1 + rng.Intn(maxTables)
		p.Seed = rng.Int63()
		ds, err := Generate(fmt.Sprintf("syn%04d", i), p)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}
