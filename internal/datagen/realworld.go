package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// This file provides the substitutes for the paper's real-world datasets
// (IMDB-light, STATS-light, and the Power dataset of Figure 1). We cannot
// ship the originals, so we generate fixed-seed datasets whose value
// distributions deliberately fall outside the Pareto training manifold of
// the synthetic corpus: mixtures of modes, plateaus, truncated normals, and
// heavy tails. What the paper's experiments need from these datasets is
// exactly "unseen data whose feature distribution differs from training",
// and these generators provide that gap reproducibly.

// mixtureColumn draws from a mixture of a few Gaussian-ish modes plus a
// uniform background — a shape common in real attribute distributions
// (ratings, years, counts) and absent from the Pareto generator.
func mixtureColumn(rng *rand.Rand, k, domain, modes int) []int64 {
	centers := make([]float64, modes)
	widths := make([]float64, modes)
	for i := range centers {
		centers[i] = 1 + rng.Float64()*float64(domain-1)
		widths[i] = (0.02 + 0.08*rng.Float64()) * float64(domain)
	}
	data := make([]int64, k)
	for i := range data {
		if rng.Float64() < 0.15 { // uniform background
			data[i] = 1 + int64(rng.Intn(domain))
			continue
		}
		m := rng.Intn(modes)
		v := centers[m] + rng.NormFloat64()*widths[m]
		iv := int64(math.Round(v))
		if iv < 1 {
			iv = 1
		}
		if iv > int64(domain) {
			iv = int64(domain)
		}
		data[i] = iv
	}
	return data
}

// plateauColumn draws from a small set of frequent values plus a long tail,
// the shape of categorical real-world attributes (genres, tags, states).
func plateauColumn(rng *rand.Rand, k, domain, heavy int) []int64 {
	data := make([]int64, k)
	for i := range data {
		if rng.Float64() < 0.7 {
			data[i] = 1 + int64(rng.Intn(heavy))
		} else {
			data[i] = 1 + int64(rng.Intn(domain))
		}
	}
	return data
}

// realTable builds a table mixing the above distribution shapes, with
// cross-column structure created by sorting-coupled columns rather than
// positional equality (again unlike the synthetic generator).
func realTable(rng *rand.Rand, name string, rows, ncols, domain int) *dataset.Table {
	t := &dataset.Table{Name: name, PKCol: -1}
	for c := 0; c < ncols; c++ {
		var data []int64
		switch c % 3 {
		case 0:
			data = mixtureColumn(rng, rows, domain, 2+rng.Intn(3))
		case 1:
			data = plateauColumn(rng, rows, domain, 3+rng.Intn(5))
		default:
			data = ParetoColumn(rng, rows, domain, 0.9+0.1*rng.Float64())
		}
		t.Cols = append(t.Cols, dataset.NewColumn(fmt.Sprintf("col%d", c), data))
	}
	// Functional-ish dependency: col1 ≈ f(col0) with noise, when present.
	if ncols >= 2 {
		for i := 0; i < rows; i++ {
			if rng.Float64() < 0.6 {
				t.Cols[1].Data[i] = 1 + (t.Cols[0].Data[i]*7)%int64(domain)
			}
		}
	}
	return t
}

// realWorldSpec describes one fixed real-world-like schema.
type realWorldSpec struct {
	name    string
	tables  []struct{ rows, cols, domain int }
	fks     []struct{ from, to int } // table indexes; FK column appended to from
	seedMix int64
}

func buildRealWorld(spec realWorldSpec, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed ^ spec.seedMix))
	d := &dataset.Dataset{Name: spec.name}
	for i, ts := range spec.tables {
		d.Tables = append(d.Tables, realTable(rng, fmt.Sprintf("%s_t%d", spec.name, i), ts.rows, ts.cols, ts.domain))
	}
	// Assign primary keys to all FK targets.
	needPK := map[int]bool{}
	for _, fk := range spec.fks {
		needPK[fk.to] = true
	}
	for ti := range d.Tables {
		if needPK[ti] {
			addPrimaryKey(d.Tables[ti])
		}
	}
	for _, fk := range spec.fks {
		p := 0.3 + 0.65*rng.Float64()
		pkCol := d.Tables[fk.to].Col(d.Tables[fk.to].PKCol)
		fkData := PopulateFK(rng, pkCol.Data, d.Tables[fk.from].Rows(), p)
		fkCol := dataset.NewColumn(fmt.Sprintf("fk_%s", d.Tables[fk.to].Name), fkData)
		d.Tables[fk.from].Cols = append(d.Tables[fk.from].Cols, fkCol)
		d.FKs = append(d.FKs, dataset.ForeignKey{
			FromTable: fk.from, FromCol: d.Tables[fk.from].NumCols() - 1,
			ToTable: fk.to, ToCol: d.Tables[fk.to].PKCol,
			Correlation: dataset.JoinCorrelation(fkCol, pkCol),
		})
	}
	return d
}

// IMDBLike returns the stand-in for IMDB-light: six tables in a star-plus-
// chain schema (title at the center, as in the movie-rating schema of the
// paper's Table I), with mixture/plateau value distributions.
func IMDBLike(seed int64) *dataset.Dataset {
	spec := realWorldSpec{
		name:    "imdb-light",
		seedMix: 0x1D4B,
		tables: []struct{ rows, cols, domain int }{
			{3000, 3, 150}, // title (hub)
			{2400, 2, 90},  // movie_info
			{1800, 2, 60},  // movie_companies
			{2600, 3, 120}, // cast_info
			{1200, 2, 40},  // movie_keyword
			{900, 2, 30},   // company
		},
		fks: []struct{ from, to int }{
			{1, 0}, {2, 0}, {3, 0}, {4, 0}, {2, 5},
		},
	}
	return buildRealWorld(spec, seed)
}

// STATSLike returns the stand-in for STATS-light: eight tables from the
// Stack-Exchange-style schema (users/posts hub-and-spoke) with
// heavier-tailed distributions and larger domains.
func STATSLike(seed int64) *dataset.Dataset {
	spec := realWorldSpec{
		name:    "stats-light",
		seedMix: 0x57A7,
		tables: []struct{ rows, cols, domain int }{
			{2800, 3, 200}, // users (hub)
			{3200, 3, 180}, // posts (hub)
			{2000, 2, 80},  // comments
			{1500, 2, 60},  // badges
			{1800, 3, 100}, // votes
			{1000, 2, 50},  // postHistory
			{800, 2, 40},   // postLinks
			{600, 2, 30},   // tags
		},
		fks: []struct{ from, to int }{
			{2, 1}, {3, 0}, {4, 1}, {5, 1}, {6, 1}, {1, 0}, {2, 0},
		},
	}
	return buildRealWorld(spec, seed)
}

// PowerLike returns the stand-in for the Power dataset of Figure 1: a
// single wide table with smooth, highly correlated sensor-style columns.
func PowerLike(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x90E6))
	rows, domain := 4000, 200
	t := &dataset.Table{Name: "power", PKCol: -1}
	base := make([]float64, rows)
	v := float64(domain) / 2
	for i := range base {
		v += rng.NormFloat64() * 4 // random walk, strongly autocorrelated
		if v < 1 {
			v = 1
		}
		if v > float64(domain) {
			v = float64(domain)
		}
		base[i] = v
	}
	for c := 0; c < 6; c++ {
		data := make([]int64, rows)
		scale := 0.5 + rng.Float64()
		for i := range data {
			x := base[i]*scale + rng.NormFloat64()*3
			iv := int64(math.Round(x))
			if iv < 1 {
				iv = 1
			}
			if iv > int64(domain) {
				iv = int64(domain)
			}
			data[i] = iv
		}
		t.Cols = append(t.Cols, dataset.NewColumn(fmt.Sprintf("col%d", c), data))
	}
	return &dataset.Dataset{Name: "power", Tables: []*dataset.Table{t}}
}

// Split implements the paper's IMDB-20/STATS-20 protocol: derive n testing
// sub-datasets from a source dataset by (1) randomly selecting 1..maxTables
// joined tables with their join keys, and (2) randomly keeping 1-2 non-key
// columns per chosen table. Each split is a self-contained Dataset.
func Split(src *dataset.Dataset, n, maxTables int, seed int64) []*dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dataset.Dataset, 0, n)
	adj := src.JoinGraphAdjacency()
	for s := 0; s < n; s++ {
		want := 1 + rng.Intn(maxTables)
		// Grow a connected set of tables through the FK graph.
		start := rng.Intn(len(src.Tables))
		chosen := map[int]bool{start: true}
		var chosenFKs []int
		frontier := []int{start}
		for len(chosen) < want && len(frontier) > 0 {
			ti := frontier[rng.Intn(len(frontier))]
			var candidates []int
			for _, fki := range adj[ti] {
				fk := src.FKs[fki]
				other := fk.FromTable
				if other == ti {
					other = fk.ToTable
				}
				if !chosen[other] {
					candidates = append(candidates, fki)
				}
			}
			if len(candidates) == 0 {
				// Remove exhausted frontier node.
				for i, f := range frontier {
					if f == ti {
						frontier = append(frontier[:i], frontier[i+1:]...)
						break
					}
				}
				continue
			}
			fki := candidates[rng.Intn(len(candidates))]
			fk := src.FKs[fki]
			other := fk.FromTable
			if other == ti {
				other = fk.ToTable
			}
			chosen[other] = true
			chosenFKs = append(chosenFKs, fki)
			frontier = append(frontier, other)
		}

		sub := &dataset.Dataset{Name: fmt.Sprintf("%s-split%02d", src.Name, s)}
		// Map source table index -> new index, and per table the kept
		// column indexes (key columns demanded by the chosen FKs plus 1-2
		// random non-key columns).
		tmap := map[int]int{}
		colmaps := map[int]map[int]int{}
		keep := map[int]map[int]bool{}
		for ti := range chosen {
			keep[ti] = map[int]bool{}
		}
		for _, fki := range chosenFKs {
			fk := src.FKs[fki]
			keep[fk.FromTable][fk.FromCol] = true
			keep[fk.ToTable][fk.ToCol] = true
		}
		for ti := range chosen {
			t := src.Tables[ti]
			if t.PKCol >= 0 {
				keep[ti][t.PKCol] = true
			}
			nonKey := t.NonKeyCols()
			rng.Shuffle(len(nonKey), func(i, j int) { nonKey[i], nonKey[j] = nonKey[j], nonKey[i] })
			take := 1 + rng.Intn(2)
			for i := 0; i < take && i < len(nonKey); i++ {
				keep[ti][nonKey[i]] = true
			}
		}
		// Deterministic iteration order over chosen tables.
		order := make([]int, 0, len(chosen))
		for ti := range chosen {
			order = append(order, ti)
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if order[j] < order[i] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, ti := range order {
			st := src.Tables[ti]
			nt := &dataset.Table{Name: st.Name, PKCol: -1}
			colmap := map[int]int{}
			for ci, c := range st.Cols {
				if keep[ti][ci] {
					colmap[ci] = len(nt.Cols)
					nt.Cols = append(nt.Cols, c)
				}
			}
			if st.PKCol >= 0 {
				if nc, ok := colmap[st.PKCol]; ok {
					nt.PKCol = nc
				}
			}
			tmap[ti] = len(sub.Tables)
			sub.Tables = append(sub.Tables, nt)
			colmaps[ti] = colmap
		}
		for _, fki := range chosenFKs {
			fk := src.FKs[fki]
			sub.FKs = append(sub.FKs, dataset.ForeignKey{
				FromTable: tmap[fk.FromTable], FromCol: colmaps[fk.FromTable][fk.FromCol],
				ToTable: tmap[fk.ToTable], ToCol: colmaps[fk.ToTable][fk.ToCol],
				Correlation: fk.Correlation,
			})
		}
		out = append(out, sub)
	}
	return out
}
