package datagen

import "math/rand"

// SyntheticEmbeddings fabricates n dim-dimensional vectors shaped like a
// metric-learned RCS embedding space: a mixture of `clusters` Gaussian
// modes with unit-scale within-cluster noise around well-separated
// centers. Stage 2 training pulls workloads with similar model rankings
// together, so real advisor embeddings are clustered rather than
// isotropic — benchmarks and recall experiments over this generator see
// the same regime the ANN index serves in production. The output is
// deterministic for a given seed.
func SyntheticEmbeddings(n, dim, clusters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	if clusters < 1 {
		clusters = 1
	}
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for f := range centers[c] {
			centers[c][f] = rng.NormFloat64() * 6
		}
	}
	out := make([][]float64, n)
	for i := range out {
		center := centers[rng.Intn(clusters)]
		v := make([]float64, dim)
		for f := range v {
			v[f] = center[f] + rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}
