package repro_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact at
// the quick scale (the full-scale runs are driven by cmd/autoce-exp and
// recorded in EXPERIMENTS.md); reported ns/op is the cost of one complete
// regeneration, excluding the shared corpus labeling, which is built once
// and reused — exactly how the experiments share Stage 1 in the paper.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	corpusOnce sync.Once
	corpus     *experiments.Corpus
	corpusErr  error
)

func benchCorpus(b *testing.B) *experiments.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = experiments.BuildCorpus(experiments.QuickScale())
	})
	if corpusErr != nil {
		b.Fatalf("building corpus: %v", corpusErr)
	}
	return corpus
}

// BenchmarkStage1BuildCorpus regenerates and labels the full QuickScale
// corpus per iteration — the paper's Stage 1 (workload + oracle truths +
// training every candidate model on every dataset) and the training-
// throughput benchmark this repository's CI tracks.
func BenchmarkStage1BuildCorpus(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildCorpus(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIDatasetStats(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1Motivation(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7LossAblation(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SelectionStrategies(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9FixedModels(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10RealWorld(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11aDMLAblation(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11bILAblation(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11b(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12OnlineLearning(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13OnlineAdapting(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIAccuracy(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIICEB(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVVaryK(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIV(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTau(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTau(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVEndToEnd(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableV(c); err != nil {
			b.Fatal(err)
		}
	}
}
