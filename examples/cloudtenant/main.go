// Cloudtenant: the paper's motivating cloud-vendor scenario (Section I,
// "Applications"). A cloud data service hosts many tenants with wildly
// different datasets; the vendor wants an accurate CE model per tenant
// without running costly online learning for each.
//
// The example trains AutoCE once offline, then serves all incoming tenant
// datasets at once through RecommendBatch — the worker-pool path a serving
// deployment (cmd/autoce-serve) runs on, where every request in the batch
// reads one immutable snapshot of the advisor — and compares the quality
// of those selections (D-error against each tenant's true label) with the
// policy of deploying one fixed CE model fleet-wide.
//
// Run with: go run ./examples/cloudtenant
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainDatasets = 24
	featCfg := feature.DefaultConfig()

	fmt.Println("Offline: labeling the vendor's training corpus and training AutoCE...")
	ds, err := datagen.GenerateCorpus(sc.TrainDatasets, 5, datagen.DefaultParams(1), 11)
	if err != nil {
		log.Fatal(err)
	}
	labeled, err := experiments.LabelDatasets(ds, sc, featCfg, 13)
	if err != nil {
		log.Fatal(err)
	}
	samples := make([]*core.Sample, len(labeled))
	for i, ld := range labeled {
		samples[i] = ld.Sample()
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.Epochs = 15
	adv, err := core.Train(samples, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ten new tenants arrive. Labeling them here stands in for ground
	// truth so we can score the selections; the vendor would not do this
	// online — that is the entire point of the advisor.
	fmt.Println("Online: 10 tenants onboarding (labels computed only to score the demo)...")
	tenantDS, err := datagen.GenerateCorpus(10, 5, datagen.DefaultParams(2), 99)
	if err != nil {
		log.Fatal(err)
	}
	tenants, err := experiments.LabelDatasets(tenantDS, sc, featCfg, 101)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the whole tenant wave as one batch: every request reads the
	// same immutable advisor snapshot across the worker pool.
	const wa = 0.9
	graphs := make([]*feature.Graph, len(tenants))
	for i, tn := range tenants {
		graphs[i] = tn.Graph
	}
	t0 := time.Now()
	recs := adv.RecommendBatch(graphs, wa)
	selTime := time.Since(t0)

	var advErr []float64
	fixedErr := make([][]float64, testbed.NumCandidates)
	for i, tn := range tenants {
		rec := recs[i]
		sv := tn.Label.ScoreVector(wa)
		advErr = append(advErr, metrics.DError(sv, rec.Model))
		for m := 0; m < testbed.NumCandidates; m++ {
			fixedErr[m] = append(fixedErr[m], metrics.DError(sv, m))
		}
		fmt.Printf("  tenant %-12s (%d tables) -> %-10s (D-error %.3f)\n",
			tn.D.Name, tn.D.NumTables(), testbed.CandidateModelLabel(rec.Model),
			metrics.DError(sv, rec.Model))
	}

	fmt.Printf("\nAutoCE selected for 10 tenants in %v (mean D-error %.3f).\n",
		selTime.Round(time.Millisecond), metrics.Mean(advErr))
	fmt.Println("Fleet-wide fixed-model policies for comparison (mean D-error):")
	for m := 0; m < testbed.NumCandidates; m++ {
		fmt.Printf("  always %-10s %.3f\n", testbed.CandidateModelLabel(m), metrics.Mean(fixedErr[m]))
	}
}
