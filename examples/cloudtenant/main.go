// Cloudtenant: the paper's motivating cloud-vendor scenario (Section I,
// "Applications") turned into a load harness for the multi-tenant serving
// stack. A cloud data service hosts hundreds of tenants with different
// datasets; the vendor serves per-tenant CE models from one autoce-serve
// fleet whose model cache pages trained artifacts in and out under a
// memory budget far below "every tenant resident".
//
// The harness spawns a real autoce-serve process (optionally a -race
// build — the tenant-soak CI job does exactly that), onboards -tenants
// synthetic single-table tenants, trains a Postgres estimator per tenant,
// then drives an estimate storm that forces continuous eviction churn:
// with 500 tenants on a 64-model budget, ~7/8 of requests cold-load.
//
// Correctness gates, checked at exit (non-zero status on violation):
//
//   - Zero wrong-tenant answers. Every tenant's table has a unique row
//     count, and estimates are deterministic, so each tenant's range
//     queries have a recorded expected answer; any response that does not
//     match it exactly means a request was served by another tenant's
//     model (or a cold load was not bit-identical).
//   - Eviction churn actually happened (evictions > 0, cold loads > 0)
//     and the cache never exceeded its budget.
//   - No request failed with anything but an admission shed (429/503).
//   - The server process exited cleanly and logged no data race.
//
// It reports per-endpoint latency (onboard, train, estimate,
// estimate-batch) as p50/p90/p99/max from internal/latency histograms.
//
// Run with: go run ./examples/cloudtenant [-tenants 500 -model-budget 64]
//
// -chaos switches to the fleet-kill drill (chaos.go): a 3-shard fleet
// with replica sets, one shard SIGKILLed and restarted mid-storm, gated
// on zero wrong-tenant answers, a bounded client-visible error rate, and
// the killed shard rejoining from its tenant manifest.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/gnn"
	"repro/internal/latency"
)

var (
	nTenants    = flag.Int("tenants", 500, "synthetic tenants to onboard and train")
	modelBudget = flag.Int("model-budget", 64, "server -model-budget (resident-model cap)")
	memBudget   = flag.String("model-mem-budget", "", "server -model-mem-budget, e.g. 8MiB (optional)")
	stormFor    = flag.Duration("duration", 15*time.Second, "estimate-storm duration")
	workers     = flag.Int("workers", 16, "concurrent estimate-storm workers")
	setupPar    = flag.Int("setup-workers", 8, "concurrent onboard/train workers")
	serveBin    = flag.String("serve-bin", "", "prebuilt autoce-serve binary (empty = go build one)")
	raceServer  = flag.Bool("race-server", false, "build the server with -race (ignored with -serve-bin)")
	seed        = flag.Int64("seed", 1, "tenant-generation seed")
)

// tenant is one synthetic customer: a single-table dataset with a unique
// row count plus the recorded expected answers to its fixed query set.
type tenant struct {
	name     string
	d        *dataset.Dataset
	queries  []map[string]any // fixed range queries; [len-1] is full-range
	expected []float64        // recorded ground truth, index-aligned
}

// hists collects per-endpoint latency, merged from per-worker recorders.
type hists struct {
	mu sync.Mutex
	m  map[string]*latency.Histogram
}

func (h *hists) merge(endpoint string, rec *latency.Histogram) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m[endpoint] == nil {
		h.m[endpoint] = &latency.Histogram{}
	}
	h.m[endpoint].Merge(rec)
}

func main() {
	flag.Parse()
	run := run
	if *chaosMode {
		run = runChaos
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudtenant: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cloudtenant: PASS")
}

func run() error {
	tmp, err := os.MkdirTemp("", "cloudtenant")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	advPath := filepath.Join(tmp, "advisor.gob")
	if err := trainAdvisor(advPath); err != nil {
		return fmt.Errorf("advisor: %w", err)
	}
	bin := *serveBin
	if bin == "" {
		bin = filepath.Join(tmp, "autoce-serve")
		if err := buildServer(bin); err != nil {
			return fmt.Errorf("building server: %w", err)
		}
	}

	srv, err := spawnServer(bin, advPath, tmp)
	if err != nil {
		return err
	}
	defer srv.stop()

	fmt.Printf("cloudtenant: %d tenants, model budget %d, storm %v x %d workers against %s\n",
		*nTenants, *modelBudget, *stormFor, *workers, srv.base)

	lat := &hists{m: map[string]*latency.Histogram{}}
	tenants := makeTenants(*nTenants, *seed)
	if err := onboardAndTrainAll(srv, tenants, lat); err != nil {
		return srv.failWithLog(err)
	}
	if err := recordGroundTruth(srv, tenants); err != nil {
		return srv.failWithLog(err)
	}
	wrong, shed, requests, err := estimateStorm(srv, tenants, lat)
	if err != nil {
		return srv.failWithLog(err)
	}

	stats, err := cacheStatsOf(srv)
	if err != nil {
		return srv.failWithLog(err)
	}
	for _, ep := range []string{"onboard", "train", "estimate", "estimate-batch"} {
		if h := lat.m[ep]; h != nil {
			fmt.Printf("  %-15s %s\n", ep, h.Summary())
		}
	}
	fmt.Printf("  storm: %d requests, %d wrong-tenant answers, %d shed (429/503)\n", requests, wrong, shed)
	fmt.Printf("  cache: %v/%d models resident, %v evictions, %v cold loads, %v write-backs, %v eviction failures\n",
		stats["resident_models"], *modelBudget, stats["evictions"], stats["cold_loads"],
		stats["writebacks"], stats["eviction_failures"])

	if err := srv.stop(); err != nil {
		return err
	}
	switch {
	case wrong > 0:
		return srv.failWithLog(fmt.Errorf("%d wrong-tenant answers", wrong))
	case stats["evictions"] == 0 || stats["cold_loads"] == 0:
		return fmt.Errorf("no eviction churn (evictions=%v cold_loads=%v) — the budget never bound", stats["evictions"], stats["cold_loads"])
	case int(stats["resident_models"]) > *modelBudget:
		return fmt.Errorf("cache over budget: %v resident > %d", stats["resident_models"], *modelBudget)
	case stats["eviction_failures"] > 0:
		return srv.failWithLog(fmt.Errorf("%v eviction write-backs failed", stats["eviction_failures"]))
	}
	return nil
}

// trainAdvisor trains a small advisor (the server refuses to start
// without one) on a synthetic corpus and saves it as a gob artifact.
func trainAdvisor(path string) error {
	featCfg := feature.DefaultConfig()
	rng := rand.New(rand.NewSource(19))
	var samples []*core.Sample
	for i := 0; i < 10; i++ {
		p := datagen.DefaultParams(rng.Int63())
		p.MinRows, p.MaxRows = 60, 120
		p.Tables = 1 + rng.Intn(3)
		d, err := datagen.Generate("t", p)
		if err != nil {
			return err
		}
		g, err := feature.Extract(d, featCfg)
		if err != nil {
			return err
		}
		noise := func() float64 { return rng.Float64() * 0.05 }
		sa := []float64{1 - noise(), 0.3 + noise(), 0.1 + noise()}
		if d.NumTables() > 1 {
			sa = []float64{0.3 + noise(), 1 - noise(), 0.1 + noise()}
		}
		se := []float64{0.2 + noise(), 0.1 + noise(), 1 - noise()}
		samples = append(samples, &core.Sample{Name: d.Name, Graph: g, Sa: sa, Se: se})
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.GNN = gnn.Config{InDim: featCfg.VertexDim(), Hidden: 16, OutDim: 8, Layers: 2, Seed: 5}
	cfg.Epochs = 6
	cfg.Batch = 12
	adv, err := core.Train(samples, cfg)
	if err != nil {
		return err
	}
	return adv.SaveFile(path)
}

func buildServer(out string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	args := []string{"build"}
	if *raceServer {
		args = append(args, "-race")
	}
	args = append(args, "-o", out, "./cmd/autoce-serve")
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	if data, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("%v: %s", err, data)
	}
	return nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s — run from inside the repo", dir)
		}
		dir = parent
	}
}

// serverProc is the spawned autoce-serve process plus its captured log.
type serverProc struct {
	cmd     *exec.Cmd
	base    string
	client  *http.Client
	log     *bytes.Buffer
	stopped bool
}

func spawnServer(bin, advPath, tmp string) (*serverProc, error) {
	addrFile := filepath.Join(tmp, "addr")
	args := []string{
		"-advisor", advPath,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-model-dir", filepath.Join(tmp, "models"),
		"-model-budget", fmt.Sprint(*modelBudget),
	}
	if *memBudget != "" {
		args = append(args, "-model-mem-budget", *memBudget)
	}
	sp := &serverProc{cmd: exec.Command(bin, args...), log: &bytes.Buffer{}}
	sp.cmd.Stdout = sp.log
	sp.cmd.Stderr = sp.log
	if err := sp.cmd.Start(); err != nil {
		return nil, err
	}
	sp.client = &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			sp.base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			sp.stop()
			return nil, fmt.Errorf("server never wrote %s; log:\n%s", addrFile, tail(sp.log))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for {
		resp, err := sp.client.Get(sp.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return sp, nil
			}
		}
		if time.Now().After(deadline) {
			sp.stop()
			return nil, fmt.Errorf("server never became healthy; log:\n%s", tail(sp.log))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop terminates the server and fails on an unclean exit or a logged
// data race (the tenant-soak CI job runs a -race build).
func (sp *serverProc) stop() error {
	if sp.stopped {
		return sp.checkLog()
	}
	sp.stopped = true
	sp.cmd.Process.Signal(os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- sp.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly: %v; log:\n%s", err, tail(sp.log))
		}
	case <-time.After(30 * time.Second):
		sp.cmd.Process.Kill()
		<-done
		return fmt.Errorf("server did not shut down within 30s; log:\n%s", tail(sp.log))
	}
	return sp.checkLog()
}

// kill terminates the server without grace — the chaos drill's simulated
// crash. The process cannot exit cleanly, so stop()'s clean-exit check is
// skipped; checkLog still applies to whatever it logged while alive.
func (sp *serverProc) kill() {
	if sp.stopped {
		return
	}
	sp.stopped = true
	sp.cmd.Process.Kill()
	sp.cmd.Wait()
}

func (sp *serverProc) checkLog() error {
	if bytes.Contains(sp.log.Bytes(), []byte("DATA RACE")) {
		return fmt.Errorf("server log reports a data race:\n%s", tail(sp.log))
	}
	return nil
}

// failWithLog attaches the server log tail to a harness-side failure so
// CI output shows both sides of the conversation.
func (sp *serverProc) failWithLog(err error) error {
	return fmt.Errorf("%w\nserver log tail:\n%s", err, tail(sp.log))
}

func tail(b *bytes.Buffer) string {
	const keep = 4096
	s := b.String()
	if len(s) > keep {
		s = "..." + s[len(s)-keep:]
	}
	return s
}

// makeTenants builds n single-table datasets with unique row counts —
// the property the wrong-tenant check rests on.
func makeTenants(n int, seed int64) []*tenant {
	tenants := make([]*tenant, n)
	for i := range tenants {
		p := datagen.Params{
			Tables:  1,
			MinCols: 2, MaxCols: 2,
			MinRows: 120 + i, MaxRows: 120 + i,
			Domain: 25,
			SkewLo: 0, SkewHi: 0.8,
			CorrLo: 0, CorrHi: 0.5,
			JoinLo: 0.5, JoinHi: 1,
			Seed: seed + int64(i),
		}
		d, err := datagen.Generate("tenant", p)
		if err != nil {
			panic(err) // deterministic generator; cannot fail on valid params
		}
		d.Name = fmt.Sprintf("tenant-%04d", i)
		tenants[i] = &tenant{name: d.Name, d: d, queries: rangeQueries(d, 8)}
	}
	return tenants
}

// rangeQueries builds n range queries over d's first column with distinct
// upper bounds; the last covers the full domain, so its Postgres estimate
// tracks the tenant's (unique) row count.
func rangeQueries(d *dataset.Dataset, n int) []map[string]any {
	lo, hi := d.Tables[0].Col(0).MinMax()
	out := make([]map[string]any, n)
	for i := range out {
		out[i] = map[string]any{
			"tables": []int{0},
			"preds":  []map[string]any{{"table": 0, "col": 0, "lo": lo, "hi": lo + (hi-lo)*int64(i+1)/int64(n)}},
		}
	}
	return out
}

func datasetBody(d *dataset.Dataset) map[string]any {
	var tables []map[string]any
	for _, t := range d.Tables {
		var cols []map[string]any
		for _, c := range t.Cols {
			cols = append(cols, map[string]any{"name": c.Name, "data": c.Data})
		}
		tb := map[string]any{"name": t.Name, "cols": cols}
		if t.PKCol >= 0 {
			tb["pk"] = t.PKCol
		}
		tables = append(tables, tb)
	}
	var fks []map[string]any
	for _, fk := range d.FKs {
		fks = append(fks, map[string]any{
			"from_table": fk.FromTable, "from_col": fk.FromCol,
			"to_table": fk.ToTable, "to_col": fk.ToCol,
		})
	}
	return map[string]any{"name": d.Name, "tables": tables, "fks": fks}
}

// post sends one JSON request, retrying admission sheds (429/503) — the
// server is allowed to push back under load, just not to answer wrongly.
// The returned status is the final one; body is decoded into out when 200.
func (sp *serverProc) post(path string, body any, out any, retries int) (int, error) {
	return sp.postKey(path, "", body, out, retries)
}

// postKey is post with the fleet routing header: chaos mode stamps every
// request with its tenant key so any shard can front it (X-Shard-Key
// requests are forwarded to a shard that can serve them).
func (sp *serverProc) postKey(path, key string, body any, out any, retries int) (int, error) {
	enc, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, sp.base+path, bytes.NewReader(enc))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-Shard-Key", key)
		}
		resp, err := sp.client.Do(req)
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if out == nil {
				return resp.StatusCode, nil
			}
			return resp.StatusCode, json.Unmarshal(data, out)
		case (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) && attempt < retries:
			time.Sleep(time.Duration(50+attempt*50) * time.Millisecond)
		default:
			return resp.StatusCode, fmt.Errorf("%s returned %d: %s", path, resp.StatusCode, data)
		}
	}
}

// onboardAndTrainAll pushes every tenant through /datasets and /train
// with bounded concurrency, timing both endpoints.
func onboardAndTrainAll(sp *serverProc, tenants []*tenant, lat *hists) error {
	var firstErr atomic.Value
	var wg sync.WaitGroup
	work := make(chan *tenant)
	for w := 0; w < *setupPar; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var onboard, train latency.Histogram
			defer func() {
				lat.merge("onboard", &onboard)
				lat.merge("train", &train)
			}()
			for tn := range work {
				t0 := time.Now()
				if _, err := sp.post("/datasets", datasetBody(tn.d), nil, 20); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("onboarding %s: %w", tn.name, err))
					return
				}
				onboard.Record(time.Since(t0))
				t0 = time.Now()
				if _, err := sp.post("/train", map[string]any{
					"dataset": tn.name, "model": "Postgres", "queries": 30, "sample_rows": 80,
				}, nil, 20); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("training %s: %w", tn.name, err))
					return
				}
				train.Record(time.Since(t0))
			}
		}()
	}
	for _, tn := range tenants {
		work <- tn
	}
	close(work)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	fmt.Printf("  onboarded and trained %d tenants\n", len(tenants))
	return nil
}

// recordGroundTruth fixes each tenant's expected answers with one batch
// estimate. The walk over all tenants on a small budget is itself the
// first eviction storm: by the end, most models are paged out again, so
// every expectation was recorded through the same cold-load path the
// storm exercises.
func recordGroundTruth(sp *serverProc, tenants []*tenant) error {
	distinct := map[float64]string{}
	collisions := 0
	for _, tn := range tenants {
		var er struct {
			Estimates []float64 `json:"estimates"`
		}
		if _, err := sp.post("/estimate", map[string]any{"dataset": tn.name, "queries": tn.queries}, &er, 20); err != nil {
			return fmt.Errorf("ground truth for %s: %w", tn.name, err)
		}
		if len(er.Estimates) != len(tn.queries) {
			return fmt.Errorf("ground truth for %s: %d estimates for %d queries", tn.name, len(er.Estimates), len(tn.queries))
		}
		tn.expected = er.Estimates
		full := er.Estimates[len(er.Estimates)-1]
		if prev, ok := distinct[full]; ok {
			collisions++
			if collisions <= 3 {
				fmt.Printf("  note: %s and %s share full-range estimate %v (weakens cross-tenant detection for this pair)\n", prev, tn.name, full)
			}
		}
		distinct[full] = tn.name
	}
	return nil
}

// estimateStorm hammers /estimate for the configured duration: random
// tenants, mixing coalesced single-query calls with batches, checking
// every answer against the tenant's recorded expectation.
func estimateStorm(sp *serverProc, tenants []*tenant, lat *hists) (wrong, shed, requests int64, err error) {
	var firstErr atomic.Value
	stop := time.Now().Add(*stormFor)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var single, batch latency.Histogram
			defer func() {
				lat.merge("estimate", &single)
				lat.merge("estimate-batch", &batch)
			}()
			for time.Now().Before(stop) {
				tn := tenants[rng.Intn(len(tenants))]
				atomic.AddInt64(&requests, 1)
				if rng.Intn(4) > 0 { // 3:1 single-to-batch mix
					qi := rng.Intn(len(tn.queries))
					var er struct {
						Estimate float64 `json:"estimate"`
					}
					t0 := time.Now()
					status, err := sp.post("/estimate", map[string]any{"dataset": tn.name, "query": tn.queries[qi]}, &er, 0)
					if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
						atomic.AddInt64(&shed, 1)
						continue
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					single.Record(time.Since(t0))
					if er.Estimate != tn.expected[qi] {
						atomic.AddInt64(&wrong, 1)
					}
				} else {
					var er struct {
						Estimates []float64 `json:"estimates"`
					}
					t0 := time.Now()
					status, err := sp.post("/estimate", map[string]any{"dataset": tn.name, "queries": tn.queries}, &er, 0)
					if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
						atomic.AddInt64(&shed, 1)
						continue
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					batch.Record(time.Since(t0))
					for i, est := range er.Estimates {
						if est != tn.expected[i] {
							atomic.AddInt64(&wrong, 1)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if e, ok := firstErr.Load().(error); ok {
		return wrong, shed, requests, e
	}
	return wrong, shed, requests, nil
}

// cacheStatsOf reads the model cache counters from /models.
func cacheStatsOf(sp *serverProc) (map[string]float64, error) {
	resp, err := sp.client.Get(sp.base + "/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var mr struct {
		Cache map[string]float64 `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, err
	}
	return mr.Cache, nil
}
