package main

// The -chaos drill: fleet-level fault tolerance under a live kill.
//
// Three autoce-serve shards share one artifact store, route by
// rendezvous replica sets (-shard-count 3 -replicas 2), and keep
// per-shard tenant manifests. The harness onboards and trains tenants
// through rotating front doors (every request carries X-Shard-Key, so
// any shard can front any tenant), records per-tenant ground truth,
// then runs an estimate storm against the two outer shards while the
// middle shard is SIGKILLed a third of the way in and restarted with
// identical flags two thirds of the way in.
//
// Gates, checked at exit (non-zero status on violation):
//
//   - Zero wrong-tenant answers, before, during, and after the kill —
//     failover must reroute to a replica serving the same artifact,
//     never to another tenant's model.
//   - The client-visible error rate (502s and transport errors; 429/503
//     sheds are excluded as in the base harness) stays within
//     -chaos-error-budget of storm requests.
//   - The killed shard rejoins from its manifest: after restart it
//     serves a backed tenant's estimate locally (no routing header, so
//     forwarding cannot mask a recovery failure) with the exact
//     pre-kill answer, without any client re-onboarding.
//   - Every shard that was stopped cleanly exits cleanly, and no shard
//     log reports a data race (CI runs a -race build).

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
)

var (
	chaosMode = flag.Bool("chaos", false, "run the 3-shard kill/restart drill instead of the single-server soak")
	errBudget = flag.Float64("chaos-error-budget", 0.05, "max fraction of storm requests allowed to fail client-visibly (502/transport) during the kill window")
)

const chaosShards = 3

func runChaos() error {
	tmp, err := os.MkdirTemp("", "cloudtenant-chaos")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	advPath := filepath.Join(tmp, "advisor.gob")
	if err := trainAdvisor(advPath); err != nil {
		return fmt.Errorf("advisor: %w", err)
	}
	bin := *serveBin
	if bin == "" {
		bin = filepath.Join(tmp, "autoce-serve")
		if err := buildServer(bin); err != nil {
			return fmt.Errorf("building server: %w", err)
		}
	}

	addrs, err := reserveAddrs(chaosShards)
	if err != nil {
		return err
	}
	modelDir := filepath.Join(tmp, "models")
	fleet := make([]*serverProc, chaosShards)
	for i := range fleet {
		if fleet[i], err = spawnShard(bin, advPath, modelDir, i, addrs); err != nil {
			return fmt.Errorf("spawning shard %d: %w", i, err)
		}
		// Late-bound: the slot is re-pointed when shard 1 restarts, and
		// every error return must reap the *current* process.
		defer func(i int) { fleet[i].stop() }(i)
	}
	fmt.Printf("cloudtenant: chaos drill — %d tenants over %d shards (replicas 2), storm %v x %d workers, kill+restart shard 1\n",
		*nTenants, chaosShards, *stormFor, *workers)

	lat := &hists{m: map[string]*latency.Histogram{}}
	tenants := makeTenants(*nTenants, *seed)
	if err := chaosSetup(fleet, tenants, lat); err != nil {
		return fleet[0].failWithLog(err)
	}

	// The storm targets the two surviving fronts only; shard 1
	// participates as primary or replica for roughly 2/3 of the tenants,
	// so its death exercises real failover, not just a dead front door.
	fronts := []*serverProc{fleet[0], fleet[2]}
	var killed *serverProc
	killAt := *stormFor / 3
	restartAt := 2 * killAt
	restartErr := make(chan error, 1)
	go func() {
		time.Sleep(killAt)
		fmt.Println("  chaos: SIGKILL shard 1")
		killed = fleet[1]
		killed.kill()
		time.Sleep(restartAt - killAt)
		fmt.Println("  chaos: restarting shard 1")
		sp, err := spawnShard(bin, advPath, modelDir, 1, addrs)
		if err != nil {
			restartErr <- fmt.Errorf("restarting shard 1: %w", err)
			return
		}
		fleet[1] = sp
		restartErr <- nil
	}()

	wrong, shed, unavail, requests := chaosStorm(fronts, tenants, lat)
	if err := <-restartErr; err != nil {
		return err
	}

	for _, ep := range []string{"onboard", "train", "estimate"} {
		if h := lat.m[ep]; h != nil {
			fmt.Printf("  %-15s %s\n", ep, h.Summary())
		}
	}
	fmt.Printf("  storm: %d requests, %d wrong-tenant answers, %d shed (429/503), %d unavailable (502/transport)\n",
		requests, wrong, shed, unavail)

	if wrong > 0 {
		return fleet[0].failWithLog(fmt.Errorf("%d wrong-tenant answers", wrong))
	}
	if requests == 0 {
		return fmt.Errorf("storm sent no requests — drill proved nothing")
	}
	if rate := float64(unavail) / float64(requests); rate > *errBudget {
		return fleet[0].failWithLog(fmt.Errorf("client-visible error rate %.3f over budget %.3f (%d/%d)",
			rate, *errBudget, unavail, requests))
	}
	if err := checkRecovered(fleet[1], tenants); err != nil {
		return fleet[1].failWithLog(err)
	}

	for i, sp := range fleet {
		if err := sp.stop(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// The killed process can't exit cleanly (SIGKILL); it still must not
	// have logged a data race while alive.
	if killed != nil {
		if err := killed.checkLog(); err != nil {
			return err
		}
	}
	return nil
}

// reserveAddrs picks n free loopback ports by binding and releasing
// them; the shards bind the same addresses moments later. The gap is a
// benign race on an otherwise idle CI host — and the fleet needs every
// peer URL known before the first shard starts.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs, nil
}

// spawnShard starts one fleet member on its reserved address. All shards
// share -model-dir (the artifact store replicas lazily load trained
// models from) while each keeps its own auto-derived tenant manifest
// (<model-dir>/shard-<i>.manifest) — which is exactly what the restarted
// shard recovers from. Probe cadence is tightened so failover converges
// within the drill window.
func spawnShard(bin, advPath, modelDir string, index int, addrs []string) (*serverProc, error) {
	args := []string{
		"-advisor", advPath,
		"-addr", addrs[index],
		"-model-dir", modelDir,
		"-shard-index", fmt.Sprint(index),
		"-shard-count", fmt.Sprint(len(addrs)),
		"-replicas", "2",
		"-shard-peers", peerURLs(addrs),
		"-probe-interval", "250ms",
		"-probe-timeout", "500ms",
		"-peer-timeout", "2s",
	}
	sp := &serverProc{cmd: exec.Command(bin, args...), log: &bytes.Buffer{}, base: "http://" + addrs[index]}
	sp.cmd.Stdout = sp.log
	sp.cmd.Stderr = sp.log
	if err := sp.cmd.Start(); err != nil {
		return nil, err
	}
	sp.client = &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := sp.client.Get(sp.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return sp, nil
			}
		}
		if time.Now().After(deadline) {
			sp.kill()
			return nil, fmt.Errorf("shard %d never became healthy; log:\n%s", index, tail(sp.log))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func peerURLs(addrs []string) string {
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	return strings.Join(urls, ",")
}

// chaosSetup onboards and trains every tenant through rotating front
// doors, then records ground truth — all with the routing header, all
// before any fault. Ground truth uses an explicit model name because
// replica-served estimates (post-kill) resolve models by name from the
// shared store, not from the primary's per-tenant default.
func chaosSetup(fleet []*serverProc, tenants []*tenant, lat *hists) error {
	var firstErr atomic.Value
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < *setupPar; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var onboard, train latency.Histogram
			defer func() {
				lat.merge("onboard", &onboard)
				lat.merge("train", &train)
			}()
			for i := range work {
				tn, front := tenants[i], fleet[i%len(fleet)]
				t0 := time.Now()
				if _, err := front.postKey("/datasets", tn.name, datasetBody(tn.d), nil, 20); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("onboarding %s: %w", tn.name, err))
					return
				}
				onboard.Record(time.Since(t0))
				t0 = time.Now()
				if _, err := front.postKey("/train", tn.name, map[string]any{
					"dataset": tn.name, "model": "Postgres", "queries": 30, "sample_rows": 80,
				}, nil, 20); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("training %s: %w", tn.name, err))
					return
				}
				train.Record(time.Since(t0))
			}
		}()
	}
	for i := range tenants {
		work <- i
	}
	close(work)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	for i, tn := range tenants {
		var er struct {
			Estimates []float64 `json:"estimates"`
		}
		if _, err := fleet[i%len(fleet)].postKey("/estimate", tn.name, map[string]any{
			"dataset": tn.name, "model": "Postgres", "queries": tn.queries,
		}, &er, 20); err != nil {
			return fmt.Errorf("ground truth for %s: %w", tn.name, err)
		}
		if len(er.Estimates) != len(tn.queries) {
			return fmt.Errorf("ground truth for %s: %d estimates for %d queries", tn.name, len(er.Estimates), len(tn.queries))
		}
		tn.expected = er.Estimates
	}
	fmt.Printf("  onboarded, trained, and recorded %d tenants\n", len(tenants))
	return nil
}

// chaosStorm is the read storm against the surviving fronts. Sheds
// (429/503) are tolerated as in the base harness; 502s and transport
// errors count against the chaos error budget; any 200 is checked
// against the tenant's recorded answer.
func chaosStorm(fronts []*serverProc, tenants []*tenant, lat *hists) (wrong, shed, unavail, requests int64) {
	stop := time.Now().Add(*stormFor)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var single latency.Histogram
			defer lat.merge("estimate", &single)
			for time.Now().Before(stop) {
				tn := tenants[rng.Intn(len(tenants))]
				front := fronts[rng.Intn(len(fronts))]
				qi := rng.Intn(len(tn.queries))
				atomic.AddInt64(&requests, 1)
				var er struct {
					Estimate float64 `json:"estimate"`
				}
				t0 := time.Now()
				status, err := front.postKey("/estimate", tn.name, map[string]any{
					"dataset": tn.name, "model": "Postgres", "query": tn.queries[qi],
				}, &er, 0)
				switch {
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					atomic.AddInt64(&shed, 1)
				case status == http.StatusBadGateway || status == 0:
					atomic.AddInt64(&unavail, 1)
				case err != nil || status != http.StatusOK:
					// Anything else (404, 409, 421...) is a routing or
					// recovery bug, which the wrong counter surfaces.
					atomic.AddInt64(&wrong, 1)
				case er.Estimate != tn.expected[qi]:
					atomic.AddInt64(&wrong, 1)
				default:
					single.Record(time.Since(t0))
				}
			}
		}(w)
	}
	wg.Wait()
	return wrong, shed, unavail, requests
}

// checkRecovered proves the restarted shard rejoined from its manifest:
// without the routing header a shard serves only datasets it backs (421
// otherwise), so a correct local answer cannot have been forwarded and
// cannot come from a tenant the manifest failed to restore.
func checkRecovered(sp *serverProc, tenants []*tenant) error {
	backed := 0
	for _, tn := range tenants {
		qi := len(tn.queries) - 1 // full-range query: tracks the unique row count
		var er struct {
			Estimate float64 `json:"estimate"`
		}
		status, err := sp.postKey("/estimate", "", map[string]any{
			"dataset": tn.name, "model": "Postgres", "query": tn.queries[qi],
		}, &er, 20)
		if status == http.StatusMisdirectedRequest {
			continue // not backed by this shard; expected for ~1/3 of tenants
		}
		if err != nil {
			return fmt.Errorf("restarted shard, tenant %s: %w", tn.name, err)
		}
		if er.Estimate != tn.expected[qi] {
			return fmt.Errorf("restarted shard answered %v for %s, recorded %v — recovery served the wrong model",
				er.Estimate, tn.name, tn.expected[qi])
		}
		backed++
	}
	if backed == 0 {
		return fmt.Errorf("restarted shard backs no tenant — manifest recovery untested")
	}
	fmt.Printf("  recovery: restarted shard serves %d/%d tenants locally from its manifest\n", backed, len(tenants))
	return nil
}
