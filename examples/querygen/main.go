// Querygen: the paper's benchmarking-query-generation scenario (Example 1:
// "if a user aims at generating millions of benchmarking queries with
// cardinality constraints, the CE step of the generator needs to be
// efficient, so she is likely to choose MSCN").
//
// The example selects a CE model for the same dataset under two different
// requirements — accuracy-first (query optimization) and efficiency-first
// (bulk query generation) — and then actually drives a query generator
// with the efficiency-first pick, reporting the throughput difference
// against the accuracy-first pick.
//
// Run with: go run ./examples/querygen
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainDatasets = 20
	featCfg := feature.DefaultConfig()

	fmt.Println("Training AutoCE offline...")
	ds, err := datagen.GenerateCorpus(sc.TrainDatasets, 5, datagen.DefaultParams(1), 21)
	if err != nil {
		log.Fatal(err)
	}
	labeled, err := experiments.LabelDatasets(ds, sc, featCfg, 23)
	if err != nil {
		log.Fatal(err)
	}
	samples := make([]*core.Sample, len(labeled))
	for i, ld := range labeled {
		samples[i] = ld.Sample()
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.Epochs = 15
	adv, err := core.Train(samples, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The target dataset the benchmark queries are generated against.
	p := datagen.DefaultParams(77)
	p.Tables = 2
	target, err := datagen.Generate("bench-target", p)
	if err != nil {
		log.Fatal(err)
	}
	g, err := feature.Extract(target, featCfg)
	if err != nil {
		log.Fatal(err)
	}
	accPick := adv.Recommend(g, 1.0).Model // accuracy-first
	effPick := adv.Recommend(g, 0.1).Model // efficiency-first
	fmt.Printf("accuracy-first pick:   %s\n", testbed.CandidateModelLabel(accPick))
	fmt.Printf("efficiency-first pick: %s\n", testbed.CandidateModelLabel(effPick))

	// Train both picks on the target and race them through the generator
	// loop: propose a query, estimate its cardinality, keep it when the
	// estimate falls in the wanted range.
	tcfg := sc.TestbedConfig(31)
	res, err := testbed.Run(target, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	race := func(model int) (kept int, elapsed time.Duration) {
		est := res.Models[model]
		proposals := workload.Generate(target, workload.DefaultConfig(300, 37))
		t0 := time.Now()
		for _, q := range proposals {
			c := est.Estimate(q)
			if c >= 10 && c <= 10000 { // the cardinality constraint
				kept++
			}
		}
		return kept, time.Since(t0)
	}
	for _, pick := range []int{accPick, effPick} {
		kept, elapsed := race(pick)
		fmt.Printf("generator with %-10s kept %3d/300 queries, CE time %8v (%.0f est/s)\n",
			testbed.CandidateModelLabel(pick), kept, elapsed.Round(time.Microsecond),
			300/elapsed.Seconds())
	}
}
