// Quickstart: the minimal end-to-end AutoCE loop.
//
// It generates a small corpus of synthetic datasets, labels them with the
// CE testbed (training all seven candidate models per dataset), trains the
// advisor with deep metric learning, and asks for a recommendation on a
// fresh unseen dataset under two different metric weightings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/testbed"
)

func main() {
	// 1. Generate a labeled corpus (Stage 1 of the paper).
	sc := experiments.QuickScale()
	sc.TrainDatasets = 20
	sc.Queries = 80
	featCfg := feature.DefaultConfig()

	fmt.Println("Stage 1: generating and labeling 20 synthetic datasets...")
	ds, err := datagen.GenerateCorpus(sc.TrainDatasets, 5, datagen.DefaultParams(1), 1)
	if err != nil {
		log.Fatal(err)
	}
	labeled, err := experiments.LabelDatasets(ds, sc, featCfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the graph encoder with deep metric learning (Stage 2) and
	// run one incremental-learning pass (Stage 3).
	fmt.Println("Stages 2-3: deep metric learning + incremental learning...")
	samples := make([]*core.Sample, len(labeled))
	for i, ld := range labeled {
		samples[i] = ld.Sample()
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.Epochs = 15
	adv, err := core.Train(samples, cfg)
	if err != nil {
		log.Fatal(err)
	}
	adv.IncrementalLearn(core.DefaultILConfig())

	// 3. Recommend for an unseen dataset (Stage 4) under two different
	// user requirements.
	p := datagen.DefaultParams(4242)
	p.Tables = 3
	target, err := datagen.Generate("unseen", p)
	if err != nil {
		log.Fatal(err)
	}
	g, err := feature.Extract(target, featCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStage 4: recommendations for %q (%d tables, %d rows)\n",
		target.Name, target.NumTables(), target.TotalRows())
	for _, wa := range []float64{1.0, 0.5} {
		rec := adv.Recommend(g, wa)
		fmt.Printf("  weights %3.0f%% accuracy / %3.0f%% efficiency -> %s\n",
			wa*100, (1-wa)*100, testbed.CandidateModelLabel(rec.Model))
	}
}
