// Drift: the online-adapting scenario of Section V-E. The advisor is
// trained on Pareto-family synthetic datasets only; a stream of datasets
// then arrives whose distributions (mixtures, plateaus — the
// real-world-like generators) fall outside the trained manifold. The
// advisor detects the drift via the 90th-percentile RCS distance
// threshold, labels the offenders online, updates itself, and the
// recommendations for later arrivals improve.
//
// Run with: go run ./examples/drift
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainDatasets = 20
	featCfg := feature.DefaultConfig()

	fmt.Println("Training AutoCE on in-distribution synthetic datasets...")
	ds, err := datagen.GenerateCorpus(sc.TrainDatasets, 5, datagen.DefaultParams(1), 31)
	if err != nil {
		log.Fatal(err)
	}
	labeled, err := experiments.LabelDatasets(ds, sc, featCfg, 33)
	if err != nil {
		log.Fatal(err)
	}
	samples := make([]*core.Sample, len(labeled))
	for i, ld := range labeled {
		samples[i] = ld.Sample()
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.Epochs = 15
	adv, err := core.Train(samples, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Drift threshold (90th-percentile RCS distance): %.3f\n\n", adv.DriftThreshold())

	// A stream of out-of-distribution datasets (real-world-like splits).
	stream := datagen.Split(datagen.STATSLike(41), 8, 4, 43)
	streamLabeled, err := experiments.LabelDatasets(stream, sc, featCfg, 47)
	if err != nil {
		log.Fatal(err)
	}

	const wa = 0.9
	var before, after []float64
	for i, ld := range streamLabeled {
		drifted := adv.DetectDrift(ld.Graph)
		rec := adv.Recommend(ld.Graph, wa)
		derr := metrics.DError(ld.Label.ScoreVector(wa), rec.Model)
		fmt.Printf("arrival %d: %-22s drift=%-5v pick=%-10s D-error=%.3f",
			i, ld.D.Name, drifted, testbed.CandidateModelLabel(rec.Model), derr)
		if i < len(streamLabeled)/2 {
			before = append(before, derr)
			if drifted {
				// Online learning: the dataset is labeled (we already
				// have the label here) and the advisor updates.
				adv.OnlineAdapt(ld.Sample(), 3)
				fmt.Print("  -> adapted")
			}
		} else {
			after = append(after, derr)
		}
		fmt.Println()
	}
	fmt.Printf("\nmean D-error before/while adapting: %.3f\n", metrics.Mean(before))
	fmt.Printf("mean D-error after adapting:        %.3f\n", metrics.Mean(after))
}
