// Package repro is a from-scratch Go reproduction of "AutoCE: An Accurate
// and Efficient Model Advisor for Learned Cardinality Estimation" (Zhang,
// Zhang, Li, Chai — ICDE 2023).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the measured
// reproduction of every table and figure. The root package exists to host
// the repository-level benchmark suite (bench_test.go); all functionality
// lives under internal/ and is exercised through cmd/autoce,
// cmd/autoce-exp, and the examples.
package repro
