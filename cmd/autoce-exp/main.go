// Command autoce-exp regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports, prefixed
// with its identifier, and all experiments share one labeled corpus.
//
// Usage:
//
//	autoce-exp -run all            # every table and figure, default scale
//	autoce-exp -run fig9,tab4      # a subset
//	autoce-exp -scale quick        # smoke-test scale
//	autoce-exp -out results.txt    # also write output to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type runner struct {
	name string
	// needsCorpus experiments receive the shared corpus; others only the
	// scale.
	run func(c *experiments.Corpus, sc experiments.Scale) (fmt.Stringer, error)
}

// render adapts the experiment result types to fmt.Stringer.
type rendered string

func (r rendered) String() string { return string(r) }

func wrap[T interface{ Render() string }](res T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return rendered(res.Render()), nil
}

var allRunners = []runner{
	{"tab1", func(_ *experiments.Corpus, sc experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.TableI(sc))
	}},
	{"fig1", func(_ *experiments.Corpus, sc experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig1(sc))
	}},
	{"fig7", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig7(c))
	}},
	{"fig8", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig8(c))
	}},
	{"fig9", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig9(c))
	}},
	{"fig10", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig10(c))
	}},
	{"fig11a", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig11a(c))
	}},
	{"fig11b", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig11b(c))
	}},
	{"fig12", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig12(c))
	}},
	{"fig13", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.Fig13(c))
	}},
	{"tab2", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.TableII(c))
	}},
	{"tab3", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.TableIII(c))
	}},
	{"tab4", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.TableIV(c))
	}},
	{"tab5", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.TableV(c))
	}},
	{"abl-tau", func(c *experiments.Corpus, _ experiments.Scale) (fmt.Stringer, error) {
		return wrap(experiments.AblationTau(c))
	}},
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (fig1,fig7..fig13,tab1..tab5,abl-tau) or 'all'")
	scaleFlag := flag.String("scale", "default", "experiment scale: quick or default")
	outFlag := flag.String("out", "", "optional output file (in addition to stdout)")
	seedFlag := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}
	sc.Seed = *seedFlag

	want := map[string]bool{}
	if *runFlag == "all" {
		for _, r := range allRunners {
			want[r.name] = true
		}
	} else {
		for _, name := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	needsCorpus := false
	for _, r := range allRunners {
		if want[r.name] && r.name != "tab1" && r.name != "fig1" {
			needsCorpus = true
		}
	}
	var corpus *experiments.Corpus
	if needsCorpus {
		fmt.Fprintf(out, "Building corpus: %d train + %d test datasets, %d queries each...\n",
			sc.TrainDatasets, sc.TestDatasets, sc.Queries)
		t0 := time.Now()
		var err error
		corpus, err = experiments.BuildCorpus(sc)
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		fmt.Fprintf(out, "Corpus labeled in %v.\n\n", time.Since(t0).Round(time.Second))
	}

	for _, r := range allRunners {
		if !want[r.name] {
			continue
		}
		t0 := time.Now()
		res, err := r.run(corpus, sc)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Fprintf(out, "=== %s (%v) ===\n%s\n", r.name, time.Since(t0).Round(time.Millisecond), res)
	}
}
