package main

// Fault-injection soak: hammer the full serving stack while failpoints
// fire on store I/O and one estimator's inference panics, and pin the
// acceptance bar of the resilience layer — the server never exits, only
// the faulting model is quarantined, and every /estimate against a
// healthy model answers 200 within its deadline.
//
// The default duration keeps the test in unit-test territory; the CI
// soak job (and manual runs) stretch it with
//
//	AUTOCE_SOAK_DURATION=2m go test ./cmd/autoce-serve -run TestServeFaultInjectionSoak -race
//
// Run it with -race: the soak is also the concurrency torture test of the
// admission semaphores, quarantine flags, and snapshot publication.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ce"
	"repro/internal/resilience"
)

// tryPostJSON is postJSON for the soak's hammer goroutines: transport
// failures come back as errors instead of t.Fatal, which must not be
// called off the test goroutine.
func tryPostJSON(ts *httptest.Server, path string, body any) (int, []byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func soakDuration() time.Duration {
	if v := os.Getenv("AUTOCE_SOAK_DURATION"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return 2 * time.Second
}

func TestServeFaultInjectionSoak(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerOpts(adv, store, serveOptions{
		EstimateDeadline: 5 * time.Second,
		TrainDeadline:    30 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two tenants: "served" hosts the faulting Postgres model next to a
	// healthy LW-XGB; "bystander" must never notice any of it.
	onboard(t, ts, serveDataset(t, 1, 51))
	trainModelOn(t, ts, "served", "Postgres")
	trainModelOn(t, ts, "served", "LW-XGB")
	byd := serveDataset(t, 2, 52)
	byd.Name = "bystander"
	onboard(t, ts, byd)
	trainModelOn(t, ts, "bystander", "Postgres")

	// Arm the faults: store reads and writes fail ~30% of the time, and
	// every inference of the "served" tenant's Postgres model panics.
	// (The bystander's Postgres shares the failpoint — its quarantine is
	// also per served model, which the post-soak phase verifies.)
	if err := resilience.SetFailpoints(
		"ce.store.save=error:0.3,ce.store.load=error:0.3,ce.pglike.estimate=panic"); err != nil {
		t.Fatal(err)
	}

	var (
		stop          atomic.Bool
		healthyOK     atomic.Int64
		faultingSeen  atomic.Int64
		trainAttempts atomic.Int64
		wg            sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		stop.Store(true)
	}

	// Healthy-model hammers: every single response must be 200. Batch
	// sizes >1 exercise the chunked context path; LW-XGB is untouched by
	// any armed failpoint.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := map[string]any{"tables": []int{0}}
			for !stop.Load() {
				status, data, err := tryPostJSON(ts, "/estimate", map[string]any{
					"dataset": "served", "model": "LW-XGB",
					"queries": []any{q, q, q},
				})
				if err != nil {
					fail("healthy estimate transport error (server down?): %v", err)
					return
				}
				if status != http.StatusOK {
					fail("healthy estimate returned %d: %s", status, data)
					return
				}
				healthyOK.Add(1)
			}
		}()
	}

	// Faulting-model hammer: 200 before the fence trips, 503 after
	// (quarantined, or freshly panicking post-retrain); anything else is
	// a resilience failure. Mixed batch sizes drive both the inline and
	// the parallel fan-out panic paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := map[string]any{"tables": []int{0}}
		batches := [][]any{{q}, {q, q, q, q}}
		for i := 0; !stop.Load(); i++ {
			status, data, err := tryPostJSON(ts, "/estimate", map[string]any{
				"dataset": "served", "model": "Postgres",
				"queries": batches[i%len(batches)],
			})
			if err != nil {
				fail("faulting estimate transport error (server down?): %v", err)
				return
			}
			if status != http.StatusOK && status != http.StatusServiceUnavailable {
				fail("faulting estimate returned %d: %s", status, data)
				return
			}
			faultingSeen.Add(1)
		}
	}()

	// Retrainer: keeps republishing the faulting model, cycling
	// quarantine -> fresh model -> panic -> quarantine. Accepts the whole
	// overload/fault surface: 200, 429 (queue), 500 (injected save
	// failure), 503 (slot wait).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			status, data, err := tryPostJSON(ts, "/train", map[string]any{"dataset": "served", "model": "Postgres"})
			if err != nil {
				fail("train transport error (server down?): %v", err)
				return
			}
			switch status {
			case http.StatusOK, http.StatusTooManyRequests,
				http.StatusInternalServerError, http.StatusServiceUnavailable:
			default:
				fail("train returned %d: %s", status, data)
				return
			}
			trainAttempts.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Re-onboarder: store.load failpoints fire during artifact reload;
	// onboarding must keep succeeding (reload is best-effort) or shed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := serveDataset(t, 1, 53)
		d.Name = "churn"
		body := datasetBody(d)
		for !stop.Load() {
			status, data, err := tryPostJSON(ts, "/datasets", body)
			if err != nil {
				fail("re-onboard transport error (server down?): %v", err)
				return
			}
			if status != http.StatusOK && status != http.StatusServiceUnavailable {
				fail("re-onboard returned %d: %s", status, data)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	time.Sleep(soakDuration())
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if healthyOK.Load() == 0 || faultingSeen.Load() == 0 || trainAttempts.Load() == 0 {
		t.Fatalf("soak exercised nothing: healthy=%d faulting=%d trains=%d",
			healthyOK.Load(), faultingSeen.Load(), trainAttempts.Load())
	}
	if resilience.FailpointHits("ce.pglike.estimate") == 0 {
		t.Fatal("inference failpoint never fired")
	}
	if resilience.FailpointHits("ce.store.save") == 0 {
		t.Fatal("store save failpoint never fired")
	}

	// Post-soak: disarm and verify the wreckage is contained. The
	// bystander tenant's Postgres may have been quarantined too (same
	// failpoint, separate servedModel) — what matters is that each
	// quarantine is per served model and retraining heals it.
	resilience.ClearFailpoints()
	if status, data := estimateStatus(t, ts, "served", "LW-XGB"); status != http.StatusOK {
		t.Fatalf("healthy model unhealthy after soak: %d %s", status, data)
	}
	trainModelOn(t, ts, "served", "Postgres")
	if status, data := estimateStatus(t, ts, "served", "Postgres"); status != http.StatusOK {
		t.Fatalf("retrained model still failing after soak: %d %s", status, data)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz returned %d after soak", resp.StatusCode)
	}
}
