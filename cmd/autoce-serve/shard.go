package main

// Shard-by-dataset routing: a static fleet of autoce-serve processes
// splits the tenant space so each shard's model cache only pages the
// datasets it owns. Ownership is rendezvous (highest-random-weight)
// hashing — every shard computes the same owner for a dataset name with
// no coordination, and resizing the fleet from n to n+1 shards only moves
// the keys whose argmax lands on the new shard (~1/(n+1) of them), not
// half the keyspace like mod-hashing would.
//
// Each dataset maps to a replica set of R shards (-replicas, default 2):
// the rendezvous argmax is the primary, the runners-up are replicas. The
// primary takes writes (/datasets, /train); every member of the replica
// set serves reads (/estimate, /recommend, /drift) for the dataset, from
// lazy stubs over the shared -model-dir artifact store — the same
// bit-identical cold-load path a restart uses.
//
// Two routing layers compose:
//
//   - In-handler: dataset-addressed endpoints reject a dataset this shard
//     cannot answer for with 421 Misdirected Request, naming the primary
//     (X-Shard-Want, and X-Shard-Peer when peer URLs are configured).
//     Writes 421 everywhere but the primary; reads 421 outside the
//     replica set. A shard is therefore always safe to hit directly — it
//     can serve a wrong answer for a misrouted tenant never, only a 421.
//   - Fleet proxy (optional, -shard-peers): a request carrying an
//     X-Shard-Key header for a dataset this shard cannot answer is
//     forwarded to a shard that can, with circuit breakers, health-probe
//     failover, bounded retries, and optional hedging (proxy.go).
//     X-Shard-Forwarded guards against forwarding loops when peers
//     disagree about the topology mid-rollout: a forwarded request is
//     never forwarded again, it answers 421 instead.

import (
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

type sharder struct {
	index    int
	count    int
	replicas int        // replica-set size R, in [1, count]
	peers    []*url.URL // len == count in proxy mode, nil otherwise
}

// newSharder builds the routing config. count <= 1 means no sharding
// (returns nil); replicas <= 0 defaults to min(2, count); peerList is an
// optional comma-separated list of count base URLs enabling fleet-proxy
// mode.
func newSharder(index, count, replicas int, peerList string) (*sharder, error) {
	if count <= 1 {
		if peerList != "" {
			return nil, fmt.Errorf("-shard-peers requires -shard-count >= 2")
		}
		if count == 1 {
			// A 1-shard "fleet" routes every dataset to itself; run unsharded
			// but say so — the operator probably meant a larger -shard-count.
			log.Printf("-shard-count 1 is a single-shard fleet; running unsharded")
		}
		return nil, nil
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("-shard-index %d outside [0, %d)", index, count)
	}
	if replicas <= 0 {
		replicas = 2
	}
	if replicas > count {
		replicas = count
	}
	sh := &sharder{index: index, count: count, replicas: replicas}
	if peerList != "" {
		parts := strings.Split(peerList, ",")
		if len(parts) != count {
			return nil, fmt.Errorf("-shard-peers lists %d URLs for %d shards", len(parts), count)
		}
		for i, p := range parts {
			u, err := url.Parse(strings.TrimSpace(p))
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("-shard-peers entry %d (%q) is not an absolute URL", i, p)
			}
			sh.peers = append(sh.peers, u)
		}
	}
	return sh, nil
}

// shardOf returns the owning (primary) shard for key: the shard whose
// (key, shard) score is highest. Every member of the fleet computes the
// same answer. The per-shard score runs the key's hash through a
// full-avalanche finalizer salted by the shard number — hashing the
// shard's decimal form into the FNV stream instead would bias the argmax
// badly, because FNV's final byte only perturbs the low bits.
func (sh *sharder) shardOf(key string) int {
	return sh.replicasOf(key)[0]
}

// replicasOf returns key's replica set: the replicas highest-scoring
// shards, primary first, in descending score order. Like the argmax, the
// ranking is agreed fleet-wide with no coordination, and growing the
// fleet only perturbs sets whose top-R ranking the new shard enters.
func (sh *sharder) replicasOf(key string) []int {
	h := fnv.New64a()
	io.WriteString(h, key)
	kh := h.Sum64()
	set := make([]int, 0, sh.replicas)
	scores := make([]uint64, 0, sh.replicas)
	for i := 0; i < sh.count; i++ {
		s := mix64(kh ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		// Insertion sort into the running top-R (R is 2 or 3 in practice).
		pos := len(set)
		for pos > 0 && s > scores[pos-1] {
			pos--
		}
		if pos >= sh.replicas {
			continue
		}
		set = append(set, 0)
		scores = append(scores, 0)
		copy(set[pos+1:], set[pos:])
		copy(scores[pos+1:], scores[pos:])
		set[pos], scores[pos] = i, s
		if len(set) > sh.replicas {
			set, scores = set[:sh.replicas], scores[:sh.replicas]
		}
	}
	return set
}

// mix64 is the splitmix64 finalizer: a bijective full-avalanche mix, so
// every shard's salt reshuffles the comparison order uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owns reports whether this shard is key's primary (write authority).
func (sh *sharder) owns(key string) bool { return sh.shardOf(key) == sh.index }

// backs reports whether this shard is in key's replica set (read
// authority; the primary backs its own keys).
func (sh *sharder) backs(key string) bool {
	for _, i := range sh.replicasOf(key) {
		if i == sh.index {
			return true
		}
	}
	return false
}

// misdirect answers a request for a dataset this shard cannot serve.
func (sh *sharder) misdirect(w http.ResponseWriter, key string) {
	want := sh.shardOf(key)
	w.Header().Set("X-Shard-Want", strconv.Itoa(want))
	hint := ""
	if sh.peers != nil {
		w.Header().Set("X-Shard-Peer", sh.peers[want].String())
		hint = " at " + sh.peers[want].String()
	}
	writeError(w, http.StatusMisdirectedRequest, fmt.Sprintf(
		"dataset %q belongs to shard %d of %d%s; this is shard %d", key, want, sh.count, hint, sh.index))
}

// shardReadOK reports whether this shard may answer reads for dataset —
// any member of its replica set may — answering the 421 itself when not.
// An empty dataset (the handler will 400 on validation) and an unsharded
// server always pass.
func (s *server) shardReadOK(w http.ResponseWriter, dataset string) bool {
	if s.shard == nil || dataset == "" || s.shard.backs(dataset) {
		return true
	}
	s.shard.misdirect(w, dataset)
	return false
}

// shardWriteOK reports whether this shard may accept a mutation of
// dataset: the primary always may, and a replica-set member may when the
// request is the primary's replication fan-out (X-Shard-Replicate).
func (s *server) shardWriteOK(w http.ResponseWriter, r *http.Request, dataset string) bool {
	if s.shard == nil || dataset == "" || s.shard.owns(dataset) {
		return true
	}
	if r.Header.Get(headerReplicate) != "" && s.shard.backs(dataset) {
		return true
	}
	s.shard.misdirect(w, dataset)
	return false
}

// shardPrimaryOK is shardWriteOK without the replication carve-out, for
// mutations that are never fanned out (/train: replicas pick trained
// models up lazily from the shared artifact store instead).
func (s *server) shardPrimaryOK(w http.ResponseWriter, dataset string) bool {
	if s.shard == nil || dataset == "" || s.shard.owns(dataset) {
		return true
	}
	s.shard.misdirect(w, dataset)
	return false
}

// readOnlyRequest classifies a request as an idempotent read — safe to
// serve from a replica, retry, and hedge. Anything unrecognized is
// treated as a write (the conservative direction: it routes to the
// primary and is never replayed).
func readOnlyRequest(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	switch r.URL.Path {
	case "/estimate", "/recommend", "/drift":
		return true
	}
	return false
}

// shardRoute is the fleet routing layer: requests carrying an X-Shard-Key
// for a dataset this shard cannot answer are forwarded (body undecoded)
// to a shard that can — with breaker/prober failover for reads — and
// everything else falls through to the local mux, whose handlers enforce
// the read/write matrix per dataset.
func (s *server) shardRoute(next http.Handler) http.Handler {
	sh := s.shard
	if sh == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-Shard-Key")
		if key == "" {
			next.ServeHTTP(w, r)
			return
		}
		if r.Header.Get(headerReplicate) != "" {
			// Replication fan-out from a primary: accept locally or 421;
			// never forward (a misdelivered fan-out must not bounce around
			// the fleet).
			if sh.backs(key) {
				next.ServeHTTP(w, r)
			} else {
				sh.misdirect(w, key)
			}
			return
		}
		read := readOnlyRequest(r)
		if sh.owns(key) || (read && sh.backs(key)) {
			next.ServeHTTP(w, r)
			return
		}
		if s.peers != nil && r.Header.Get("X-Shard-Forwarded") == "" {
			s.peers.forward(w, r, key, read)
			return
		}
		sh.misdirect(w, key)
	})
}
