package main

// Shard-by-dataset routing: a static fleet of autoce-serve processes
// splits the tenant space so each shard's model cache only pages the
// datasets it owns. Ownership is rendezvous (highest-random-weight)
// hashing — every shard computes the same owner for a dataset name with
// no coordination, and resizing the fleet from n to n+1 shards only moves
// the keys whose argmax lands on the new shard (~1/(n+1) of them), not
// half the keyspace like mod-hashing would.
//
// Two routing layers compose:
//
//   - In-handler: every dataset-addressed endpoint rejects a dataset this
//     shard does not own with 421 Misdirected Request, naming the owner
//     (X-Shard-Want, and X-Shard-Peer when peer URLs are configured).
//     A shard is therefore always safe to hit directly — it can serve a
//     wrong answer for a misrouted tenant never, only a 421.
//   - Thin proxy (optional, -shard-peers): a request carrying an
//     X-Shard-Key header for a dataset owned elsewhere is reverse-proxied
//     to the owner before the body is even decoded, so any shard can
//     front the whole fleet for clients that set the header.
//     X-Shard-Forwarded guards against forwarding loops when peers
//     disagree about the topology mid-rollout: a forwarded request is
//     never forwarded again, it answers 421 instead.

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
)

type sharder struct {
	index int
	count int
	peers []*url.URL               // len == count in proxy mode, nil otherwise
	prox  []*httputil.ReverseProxy // parallel to peers
}

// newSharder builds the routing config. count <= 1 means no sharding
// (returns nil); peerList is an optional comma-separated list of count
// base URLs enabling thin-proxy mode.
func newSharder(index, count int, peerList string) (*sharder, error) {
	if count <= 1 {
		if count == 1 || peerList != "" {
			// A 1-shard "fleet" with peers is a misconfiguration worth
			// flagging; count 0 with no peers is simply "sharding off".
			if peerList != "" {
				return nil, fmt.Errorf("-shard-peers requires -shard-count >= 2")
			}
		}
		return nil, nil
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("-shard-index %d outside [0, %d)", index, count)
	}
	sh := &sharder{index: index, count: count}
	if peerList != "" {
		parts := strings.Split(peerList, ",")
		if len(parts) != count {
			return nil, fmt.Errorf("-shard-peers lists %d URLs for %d shards", len(parts), count)
		}
		for i, p := range parts {
			u, err := url.Parse(strings.TrimSpace(p))
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("-shard-peers entry %d (%q) is not an absolute URL", i, p)
			}
			sh.peers = append(sh.peers, u)
			sh.prox = append(sh.prox, httputil.NewSingleHostReverseProxy(u))
		}
	}
	return sh, nil
}

// shardOf returns the owning shard for key: the shard whose (key, shard)
// score is highest. Every member of the fleet computes the same answer.
// The per-shard score runs the key's hash through a full-avalanche
// finalizer salted by the shard number — hashing the shard's decimal form
// into the FNV stream instead would bias the argmax badly, because FNV's
// final byte only perturbs the low bits.
func (sh *sharder) shardOf(key string) int {
	h := fnv.New64a()
	io.WriteString(h, key)
	kh := h.Sum64()
	best, bestScore := 0, uint64(0)
	for i := 0; i < sh.count; i++ {
		if s := mix64(kh ^ (uint64(i)+1)*0x9e3779b97f4a7c15); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a bijective full-avalanche mix, so
// every shard's salt reshuffles the comparison order uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (sh *sharder) owns(key string) bool { return sh.shardOf(key) == sh.index }

// misdirect answers a request for a dataset this shard does not own.
func (sh *sharder) misdirect(w http.ResponseWriter, key string) {
	want := sh.shardOf(key)
	w.Header().Set("X-Shard-Want", strconv.Itoa(want))
	hint := ""
	if sh.peers != nil {
		w.Header().Set("X-Shard-Peer", sh.peers[want].String())
		hint = " at " + sh.peers[want].String()
	}
	writeError(w, http.StatusMisdirectedRequest, fmt.Sprintf(
		"dataset %q belongs to shard %d of %d%s; this is shard %d", key, want, sh.count, hint, sh.index))
}

// shardOK reports whether this shard owns dataset, answering the 421
// itself when it does not. An empty dataset (the handler will 400 on
// validation) and an unsharded server always pass.
func (s *server) shardOK(w http.ResponseWriter, dataset string) bool {
	if s.shard == nil || dataset == "" || s.shard.owns(dataset) {
		return true
	}
	s.shard.misdirect(w, dataset)
	return false
}

// middleware is the thin-proxy layer: requests carrying an X-Shard-Key
// for a dataset owned by a configured peer are forwarded there wholesale
// (body undecoded); everything else falls through to the local mux, whose
// handlers enforce ownership per dataset.
func (sh *sharder) middleware(next http.Handler) http.Handler {
	if sh == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-Shard-Key")
		if key == "" || sh.owns(key) {
			next.ServeHTTP(w, r)
			return
		}
		if sh.prox != nil && r.Header.Get("X-Shard-Forwarded") == "" {
			r.Header.Set("X-Shard-Forwarded", strconv.Itoa(sh.index))
			sh.prox[sh.shardOf(key)].ServeHTTP(w, r)
			return
		}
		sh.misdirect(w, key)
	})
}
