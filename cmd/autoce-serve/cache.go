package main

// The budgeted model cache: the paging layer between the per-tenant
// serving snapshots and the ce.Store artifact directory. The fleet design
// point is thousands of onboarded tenant datasets whose trained models do
// not all fit in memory; the cache keeps a bounded working set resident
// (LRU, costed by artifact bytes and/or model count) and pages the rest
// through the store:
//
//   - Train installs the fresh model as resident (its artifact was just
//     persisted, so it is immediately evictable).
//   - Onboarding registers stored artifacts as cold-loadable stubs via
//     Store.Info — schema-checked and size-costed without paying the gob
//     decode — so onboarding N tenants is O(N) stat-sized, not O(N)
//     model-decode-sized.
//   - The first estimate against an evicted model cold-loads it
//     transparently (single-flight per model; concurrent estimators wait
//     for one load rather than thundering the store).
//   - Eviction picks the least-recently-used unpinned model. A model whose
//     inference mutates internal state (sampling RNG streams) is written
//     back to the store before being dropped, so the cold load that
//     follows resumes the exact stream position — eviction is invisible in
//     the estimate sequence, bit for bit.
//   - Quarantine flags live outside the residency state: an evicted
//     quarantined model stays quarantined (the flag is on the servedModel,
//     which snapshots share), and a quarantined victim is dropped without
//     write-back — post-panic state is never persisted over a good
//     artifact.
//
// Without a store the cache never evicts (there is nowhere to page to);
// without a budget it is an accounting layer only.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/ce"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// servedModel is one trained (dataset, model) pair published in a tenant's
// serving snapshot. Its identity and guards are immutable; its residency
// state (model, size, dirty, pins, elem, gone) is owned by the modelCache
// and guarded by the cache's mutex.
type servedModel struct {
	spec   ce.Spec
	tenant string // dataset name: the store key this model pages under
	schema string // schema fingerprint of the dataset it was trained on
	// mu guards models whose inference mutates internal state (sampling
	// RNGs); nil for concurrent-safe models.
	mu *sync.Mutex
	// quarantined marks a model whose inference panicked. Snapshot clones
	// share servedModel pointers, so the flag survives republishes of
	// other models — and eviction/cold-load cycles — and clears only when
	// this (dataset, model) pair is retrained, which replaces the
	// servedModel wholesale.
	quarantined atomic.Bool
	// loadMu single-flights cold loads of this model.
	loadMu sync.Mutex

	// Residency, guarded by the owning modelCache's mu.
	model   ce.Model      // nil while evicted
	size    int64         // artifact bytes: the model's cost against the byte budget
	dirty   bool          // stateful inference advanced internal state since last persist
	pins    int           // in-flight estimates; evictable only at 0
	elem    *list.Element // LRU position; nil while evicted
	gone    bool          // superseded by retrain/re-onboard; never resurrect
	noEvict bool          // a write-back failed; pinned resident to preserve state
}

func newServedModel(spec ce.Spec, m ce.Model, tenantName, schema string) *servedModel {
	sm := &servedModel{spec: spec, model: m, tenant: tenantName, schema: schema}
	if !spec.Concurrent {
		sm.mu = &sync.Mutex{}
	}
	return sm
}

// newStubModel registers a stored artifact as cold-loadable without
// decoding it: the model pointer stays nil until the first estimate pages
// it in.
func newStubModel(spec ce.Spec, tenantName, schema string, size int64) *servedModel {
	sm := newServedModel(spec, nil, tenantName, schema)
	sm.size = size
	return sm
}

// errModelQuarantined reports inference against a model whose earlier
// inference panicked; only retraining clears it.
var errModelQuarantined = errors.New("model is quarantined after an inference panic; retrain it")

// errModelSuperseded reports that the model resolved from a snapshot was
// replaced (retrain or re-onboard) before its estimate ran; the caller
// should re-resolve the current snapshot and retry.
var errModelSuperseded = errors.New("model was superseded mid-request; retry")

// estimate runs the batched hot path against the (possibly cold-loaded)
// model under its guard, fenced: a panic inside this model's inference is
// converted to an error and quarantines the model — subsequent estimates
// against it fail fast with 503 while every other served model keeps
// answering. The context bounds the batch (chunked, cooperative).
func (sm *servedModel) estimate(ctx context.Context, cache *modelCache, qs []*workload.Query) ([]float64, error) {
	if sm.quarantined.Load() {
		return nil, errModelQuarantined
	}
	m, err := cache.acquire(sm)
	if err != nil {
		return nil, err
	}
	// Non-concurrent inference consumes the model's internal sampling
	// stream: mark it dirty so eviction writes the advanced state back.
	defer cache.release(sm, !sm.spec.Concurrent)
	var out []float64
	err = resilience.Guard("estimate:"+sm.spec.Name, func() error {
		if sm.mu != nil {
			sm.mu.Lock()
			defer sm.mu.Unlock()
		}
		var err error
		out, err = ce.EstimateBatchContext(ctx, m, qs)
		return err
	})
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		sm.quarantined.Store(true)
		log.Printf("quarantining model %s/%s after inference panic: %v\n%s", sm.tenant, sm.spec.Name, pe.Value, pe.Stack)
		return nil, errModelQuarantined
	}
	return out, err
}

// modelCache is the LRU paging layer. All residency mutations happen under
// mu; store I/O for write-backs also runs under mu (artifacts are small —
// the simplicity of a single lock beats a pin/handoff protocol at this
// artifact scale, and cold loads, the common slow path, run outside it).
type modelCache struct {
	store     *ce.Store // nil: nothing to page to; the cache never evicts
	maxModels int       // 0 = unlimited
	maxBytes  int64     // 0 = unlimited

	mu    sync.Mutex
	lru   *list.List // of *servedModel; front = most recently used
	count int
	bytes int64

	coldLoads        atomic.Int64
	evictions        atomic.Int64
	writebacks       atomic.Int64
	evictionFailures atomic.Int64
}

func newModelCache(store *ce.Store, maxModels int, maxBytes int64) *modelCache {
	return &modelCache{store: store, maxModels: maxModels, maxBytes: maxBytes, lru: list.New()}
}

func (c *modelCache) pageable() bool {
	return c.store != nil && (c.maxModels > 0 || c.maxBytes > 0)
}

// acquire returns sm's model, resident and pinned against eviction
// (release must follow), cold-loading from the store if it was paged out.
func (c *modelCache) acquire(sm *servedModel) (ce.Model, error) {
	c.mu.Lock()
	if sm.gone {
		c.mu.Unlock()
		return nil, errModelSuperseded
	}
	if sm.model != nil {
		sm.pins++
		if sm.elem != nil {
			c.lru.MoveToFront(sm.elem)
		}
		m := sm.model
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	return c.coldLoad(sm)
}

// coldLoad pages sm in from the store, single-flighted per model: the
// first caller decodes, the rest inherit the resident model.
func (c *modelCache) coldLoad(sm *servedModel) (ce.Model, error) {
	sm.loadMu.Lock()
	defer sm.loadMu.Unlock()
	// Re-check residency: a concurrent caller may have finished the load
	// while this one waited for loadMu.
	c.mu.Lock()
	if sm.gone {
		c.mu.Unlock()
		return nil, errModelSuperseded
	}
	if sm.model != nil {
		sm.pins++
		if sm.elem != nil {
			c.lru.MoveToFront(sm.elem)
		}
		m := sm.model
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()

	if c.store == nil {
		return nil, fmt.Errorf("model %s for dataset %s is not resident and no artifact store is configured", sm.spec.Name, sm.tenant)
	}
	m, schema, err := c.store.Load(sm.tenant, sm.spec.Name)
	if err != nil {
		return nil, fmt.Errorf("cold-loading %s/%s: %w", sm.tenant, sm.spec.Name, err)
	}
	if schema != sm.schema {
		// The artifact was rewritten (another process, an operator) for a
		// structurally different dataset; serving it would index the
		// tenant's data wrongly.
		return nil, fmt.Errorf("artifact for %s/%s records schema %q, tenant expects %q", sm.tenant, sm.spec.Name, schema, sm.schema)
	}
	c.coldLoads.Add(1)

	c.mu.Lock()
	if sm.gone {
		c.mu.Unlock()
		return nil, errModelSuperseded
	}
	sm.model = m
	sm.pins++
	c.count++
	c.bytes += sm.size
	sm.elem = c.lru.PushFront(sm)
	c.evictLocked()
	c.mu.Unlock()
	return m, nil
}

// release unpins sm after an estimate. mutated records that the inference
// advanced the model's internal state (sampling streams), so eviction must
// write it back before dropping it.
func (c *modelCache) release(sm *servedModel, mutated bool) {
	c.mu.Lock()
	sm.pins--
	if mutated {
		sm.dirty = true
	}
	if sm.gone && sm.pins == 0 {
		sm.model = nil
	}
	// The release may have made an over-budget cache evictable again.
	c.evictLocked()
	c.mu.Unlock()
}

// install publishes a freshly trained model as resident. size is the
// persisted artifact's byte cost (0 when no store is configured — the
// model is then unevictable anyway).
func (c *modelCache) install(sm *servedModel, size int64) {
	c.mu.Lock()
	sm.size = size
	c.count++
	c.bytes += size
	sm.elem = c.lru.PushFront(sm)
	c.evictLocked()
	c.mu.Unlock()
}

// forget removes a superseded model from the cache without write-back: its
// artifact slot now belongs to a successor, and persisting the old state
// over it would resurrect a model the tenant no longer holds.
func (c *modelCache) forget(sm *servedModel) {
	c.mu.Lock()
	sm.gone = true
	sm.dirty = false
	if sm.elem != nil {
		c.lru.Remove(sm.elem)
		sm.elem = nil
		c.count--
		c.bytes -= sm.size
	}
	if sm.pins == 0 {
		sm.model = nil
	}
	c.mu.Unlock()
}

// unforget reverses a forget that turned out to be premature (the
// successor's artifact write failed): the old model resumes serving.
func (c *modelCache) unforget(sm *servedModel) {
	c.mu.Lock()
	sm.gone = false
	if sm.model != nil && sm.elem == nil {
		c.count++
		c.bytes += sm.size
		sm.elem = c.lru.PushFront(sm)
		c.evictLocked()
	}
	c.mu.Unlock()
}

// evictLocked pages out least-recently-used unpinned models until the
// cache is back under budget. Dirty stateful models are written back
// first; quarantined models are dropped without write-back (post-panic
// state must not overwrite a good artifact). Called with c.mu held.
func (c *modelCache) evictLocked() {
	if !c.pageable() {
		return
	}
	for c.overBudgetLocked() {
		var victim *servedModel
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			sm := e.Value.(*servedModel)
			if sm.pins == 0 && !sm.noEvict {
				victim = sm
				break
			}
		}
		if victim == nil {
			return // everything pinned; the next release retries
		}
		if victim.dirty && !victim.quarantined.Load() {
			if _, err := c.store.Save(victim.tenant, victim.schema, victim.model); err != nil {
				// Losing the advanced sampler state would break the
				// bit-exact estimate sequence; keep the model resident
				// (over budget) rather than silently rewinding it.
				c.evictionFailures.Add(1)
				victim.noEvict = true
				log.Printf("eviction write-back of %s/%s failed; pinning it resident: %v", victim.tenant, victim.spec.Name, err)
				continue
			}
			victim.dirty = false
			c.writebacks.Add(1)
		}
		c.lru.Remove(victim.elem)
		victim.elem = nil
		victim.model = nil
		c.count--
		c.bytes -= victim.size
		c.evictions.Add(1)
	}
}

func (c *modelCache) overBudgetLocked() bool {
	return (c.maxModels > 0 && c.count > c.maxModels) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// residency reports whether sm currently holds a decoded model, and its
// artifact byte cost.
func (c *modelCache) residency(sm *servedModel) (resident bool, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return sm.model != nil, sm.size
}

// cacheStats is a point-in-time view of the paging layer for /models and
// /healthz.
type cacheStats struct {
	BudgetModels     int   `json:"budget_models,omitempty"`
	BudgetBytes      int64 `json:"budget_bytes,omitempty"`
	ResidentModels   int   `json:"resident_models"`
	ResidentBytes    int64 `json:"resident_bytes"`
	ColdLoads        int64 `json:"cold_loads"`
	Evictions        int64 `json:"evictions"`
	Writebacks       int64 `json:"writebacks"`
	EvictionFailures int64 `json:"eviction_failures,omitempty"`
}

func (c *modelCache) stats() cacheStats {
	c.mu.Lock()
	count, bytes := c.count, c.bytes
	c.mu.Unlock()
	return cacheStats{
		BudgetModels:     c.maxModels,
		BudgetBytes:      c.maxBytes,
		ResidentModels:   count,
		ResidentBytes:    bytes,
		ColdLoads:        c.coldLoads.Load(),
		Evictions:        c.evictions.Load(),
		Writebacks:       c.writebacks.Load(),
		EvictionFailures: c.evictionFailures.Load(),
	}
}
