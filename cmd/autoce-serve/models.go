package main

// The model-lifecycle half of the serving front-end: dataset onboarding,
// registry-driven training, and batched estimation served from per-tenant
// snapshots. This closes the loop the advisor opens — /recommend names a
// model, /train fits that model on the onboarded dataset through the ce
// registry, and /estimate answers cardinality queries from it.
//
// Concurrency is per tenant: every onboarded dataset owns a tenantHandle
// whose immutable snapshot readers load from an atomic pointer without
// blocking, and whose mutators (/datasets replace, /train publish)
// serialize on that handle's lock alone. Republishing one tenant swaps one
// pointer; every other tenant's snapshot — by pointer identity — is
// untouched, so a busy tenant's retrain loop cannot add even a cache-line
// of contention to its neighbors. Model residency (which trained models
// are decoded in memory versus paged out to the artifact store) is the
// modelCache's business (cache.go); snapshots hold servedModel handles
// that survive eviction.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ce"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/resilience"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Onboarding and training limits: generous for real use, tight enough
// that one malformed request cannot stall the server.
const (
	maxDatasetNameLen = 128
	// maxDatasetTables bounds the join graph: training a data-driven model
	// enumerates connected table subsets (up to 2^n exact engine join
	// counts), so the table count — not just the cell count — must stay
	// small enough that one /train cannot pin the server (2^8 masks is
	// trivial; the paper's schemas use at most 5 tables).
	maxDatasetTables = 8
	maxDatasetCells  = 4 << 20 // total values across all tables
	maxTrainQueries  = 2000
	maxSampleRows    = 20000
	maxBatchQueries  = 10000
	defaultWa        = 0.9
)

// schemaSignature fingerprints a dataset's structure — table/column
// counts, primary keys, and FK edges. Artifacts record it at training
// time; a reloaded model is only served when the onboarded dataset still
// matches, so a re-onboarded dataset with a different shape can never be
// routed into a model indexed for the old one.
func schemaSignature(d *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d", len(d.Tables))
	for _, t := range d.Tables {
		fmt.Fprintf(&b, ";c%d,pk%d", t.NumCols(), t.PKCol)
	}
	for _, fk := range d.FKs {
		fmt.Fprintf(&b, ";f%d.%d>%d.%d", fk.FromTable, fk.FromCol, fk.ToTable, fk.ToCol)
	}
	return b.String()
}

// tenant is one onboarded dataset with its feature graph and trained
// models. All fields are immutable once published; updates clone.
type tenant struct {
	d      *dataset.Dataset
	graph  *feature.Graph
	models map[string]*servedModel
	active string // most recently trained model name
}

func (t *tenant) clone() *tenant {
	nt := &tenant{d: t.d, graph: t.graph, active: t.active,
		models: make(map[string]*servedModel, len(t.models))}
	for k, v := range t.models {
		nt.models[k] = v
	}
	return nt
}

// tenantHandle is one tenant's serving slot: an atomically swapped
// immutable snapshot plus the mutator lock serializing republishes of
// this tenant only. A republish swaps this handle's pointer and no
// other's — the isolation the multi-tenant fleet is built on.
type tenantHandle struct {
	name string
	mu   sync.Mutex // serializes mutators (onboard-replace, train publish)
	snap atomic.Pointer[tenant]
}

// fleet maps dataset names to their handles. The map only grows (there is
// no offboarding endpoint) and a slot is never replaced once created, so
// a loaded handle stays valid for the process lifetime.
type fleet struct {
	mu sync.RWMutex
	m  map[string]*tenantHandle
}

func newFleet() *fleet { return &fleet{m: map[string]*tenantHandle{}} }

// tenant returns name's current serving snapshot, or nil if the dataset
// was never onboarded (or its first onboarding has not published yet).
func (f *fleet) tenant(name string) *tenant {
	f.mu.RLock()
	h := f.m[name]
	f.mu.RUnlock()
	if h == nil {
		return nil
	}
	return h.snap.Load()
}

// getOrCreate returns name's handle, creating the empty slot on first
// onboard.
func (f *fleet) getOrCreate(name string) *tenantHandle {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.m[name]
	if h == nil {
		h = &tenantHandle{name: name}
		f.m[name] = h
	}
	return h
}

// snapshot returns every published tenant keyed by name — a point-in-time
// read for listing endpoints; per-tenant pointers stay live-updating.
func (f *fleet) snapshot() map[string]*tenant {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]*tenant, len(f.m))
	for name, h := range f.m {
		if tn := h.snap.Load(); tn != nil {
			out[name] = tn
		}
	}
	return out
}

// ---------------------------------------------------------------- onboard

type columnPayload struct {
	Name string  `json:"name"`
	Data []int64 `json:"data"`
}

type tablePayload struct {
	Name string          `json:"name"`
	PK   *int            `json:"pk"` // column index; absent = no primary key
	Cols []columnPayload `json:"cols"`
}

type fkPayload struct {
	FromTable int `json:"from_table"`
	FromCol   int `json:"from_col"`
	ToTable   int `json:"to_table"`
	ToCol     int `json:"to_col"`
}

type datasetRequest struct {
	Name   string         `json:"name"`
	Tables []tablePayload `json:"tables"`
	FKs    []fkPayload    `json:"fks"`
}

type datasetResponse struct {
	Dataset      string   `json:"dataset"`
	Tables       int      `json:"tables"`
	Rows         int      `json:"rows"`
	VertexDim    int      `json:"vertex_dim"`
	StoredModels []string `json:"stored_models,omitempty"`
}

// toDataset validates the payload and builds the in-memory dataset.
func (p *datasetRequest) toDataset() (*dataset.Dataset, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("dataset name is required")
	}
	if len(p.Name) > maxDatasetNameLen {
		return nil, fmt.Errorf("dataset name exceeds %d bytes", maxDatasetNameLen)
	}
	if len(p.Tables) == 0 {
		return nil, fmt.Errorf("dataset has no tables")
	}
	if len(p.Tables) > maxDatasetTables {
		return nil, fmt.Errorf("dataset has %d tables, limit %d", len(p.Tables), maxDatasetTables)
	}
	cells := 0
	d := &dataset.Dataset{Name: p.Name}
	for ti, tp := range p.Tables {
		if len(tp.Cols) == 0 {
			return nil, fmt.Errorf("table %d has no columns", ti)
		}
		name := tp.Name
		if name == "" {
			name = fmt.Sprintf("t%d", ti)
		}
		t := &dataset.Table{Name: name, PKCol: -1}
		if tp.PK != nil {
			t.PKCol = *tp.PK
		}
		for ci, cp := range tp.Cols {
			if len(cp.Data) == 0 {
				return nil, fmt.Errorf("table %d column %d is empty", ti, ci)
			}
			cells += len(cp.Data)
			if cells > maxDatasetCells {
				return nil, fmt.Errorf("dataset exceeds %d total values", maxDatasetCells)
			}
			cname := cp.Name
			if cname == "" {
				cname = fmt.Sprintf("c%d", ci)
			}
			t.Cols = append(t.Cols, dataset.NewColumn(cname, cp.Data))
		}
		d.Tables = append(d.Tables, t)
	}
	for _, fk := range p.FKs {
		d.FKs = append(d.FKs, dataset.ForeignKey{
			FromTable: fk.FromTable, FromCol: fk.FromCol,
			ToTable: fk.ToTable, ToCol: fk.ToCol,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !hasPredicableColumn(d) {
		return nil, fmt.Errorf("dataset has no predicable column: every non-key, non-FK column is constant, so no training workload can be generated")
	}
	return d, nil
}

// hasPredicableColumn reports whether some table has a column the workload
// generator can place a range predicate on (not a primary key, not an FK
// source, spanning more than one value) — the condition for workload
// generation to terminate.
func hasPredicableColumn(d *dataset.Dataset) bool {
	fkCols := map[[2]int]bool{}
	for _, fk := range d.FKs {
		fkCols[[2]int{fk.FromTable, fk.FromCol}] = true
	}
	for ti, t := range d.Tables {
		for ci, c := range t.Cols {
			if ci == t.PKCol || fkCols[[2]int{ti, ci}] {
				continue
			}
			if lo, hi := c.MinMax(); hi > lo {
				return true
			}
		}
	}
	return false
}

// handleDatasets onboards (or replaces) a dataset: validate, extract the
// feature graph, register any stored artifacts as cold-loadable models,
// publish the new tenant snapshot, record it in the tenant manifest, and
// (as primary) fan the payload out to the dataset's replica set.
func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var req datasetRequest
	if !decodePost(w, r, &req) {
		return
	}
	if !s.shardWriteOK(w, r, req.Name) {
		return
	}
	// Failpoint "serve.onboard" injects an onboarding failure after decode
	// and before any state changes (the soak harness exercises it; panic
	// mode lands in the recovery middleware).
	if err := resilience.Failpoint("serve.onboard"); err != nil {
		writeError(w, http.StatusInternalServerError, "onboarding: "+err.Error())
		return
	}
	resp, status, err := s.onboard(&req)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	s.recordAndReplicate(r, &req)
	writeJSON(w, http.StatusOK, resp)
}

// recordAndReplicate is the durability/fan-out tail of a successful
// onboarding: persist the payload to the tenant manifest (best-effort —
// a failed write degrades restart durability, not serving) and, when this
// shard is the dataset's primary, replicate the payload to the rest of
// its replica set so they can serve reads. Replication fan-ins (requests
// already carrying X-Shard-Replicate) are recorded but never re-fanned.
func (s *server) recordAndReplicate(r *http.Request, req *datasetRequest) {
	payload, err := json.Marshal(req)
	if err != nil {
		log.Printf("onboarding %q: encoding manifest entry: %v", req.Name, err)
		return
	}
	if s.manifest != nil {
		if err := s.manifest.put(req.Name, payload); err != nil {
			log.Printf("onboarding %q: manifest write failed (restart recovery degraded): %v", req.Name, err)
		}
	}
	if s.peers == nil || s.shard == nil || r.Header.Get(headerReplicate) != "" || !s.shard.owns(req.Name) {
		return
	}
	for _, peer := range s.shard.replicasOf(req.Name) {
		if peer == s.shard.index {
			continue
		}
		if err := s.peers.replicate(r.Context(), peer, req.Name, payload); err != nil {
			// Best-effort: the replica serves 404s for this tenant until a
			// later onboarding reaches it; reads fail over to the primary.
			log.Printf("onboarding %q: replicating to shard %d failed: %v", req.Name, peer, err)
		}
	}
}

// readRepair rescues a read for a dataset this shard backs but never
// onboarded — the onboarding fan-out is best-effort, so a replica can
// lag behind its set. Instead of a 404 the read re-forwards to the rest
// of the replica set (primary included), turning the replication gap
// into one extra hop. Forwarded requests are excluded: the loop guard
// makes the second miss final, so a genuinely unknown dataset still
// answers 404 after at most one bounce. Reports whether it responded.
func (s *server) readRepair(w http.ResponseWriter, r *http.Request, name string, req any) bool {
	if s.peers == nil || s.shard == nil || !s.shard.backs(name) || r.Header.Get("X-Shard-Forwarded") != "" {
		return false
	}
	repairable := false // some other member must exist to ask (replicas=1 has none)
	for _, p := range s.shard.replicasOf(name) {
		repairable = repairable || p != s.shard.index
	}
	if !repairable {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	s.peers.forwardRead(w, r, name, body)
	return true
}

// onboard is the core of dataset onboarding, shared by the HTTP handler
// and manifest replay at startup. It returns the HTTP status to pair
// with a non-nil error.
func (s *server) onboard(req *datasetRequest) (*datasetResponse, int, error) {
	d, err := req.toDataset()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	g, err := feature.Extract(d, feature.DefaultConfig())
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("extracting features: %w", err)
	}
	// One snapshot for the whole request: a concurrent republish between
	// the dimension check and the response would otherwise validate against
	// one encoder and report another's dimension.
	serving := s.adv.Serving()
	if inDim := serving.InDim(); len(g.V) > 0 && len(g.V[0]) != inDim {
		return nil, http.StatusBadRequest, fmt.Errorf(
			"dataset features have dimension %d, advisor's encoder expects %d", len(g.V[0]), inDim)
	}
	tn := &tenant{d: d, graph: g, models: map[string]*servedModel{}}
	// Register persisted artifacts for this dataset name as cold-loadable
	// stubs, so a restarted server resumes serving estimates once the data
	// is back. Only the artifact wrapper is read here (schema fingerprint,
	// integrity, size) — the model itself decodes on first estimate, which
	// keeps onboarding hundreds of tenants cheap and lets the model cache,
	// not the onboarding path, decide what is resident. Artifacts whose
	// recorded schema does not match the onboarded dataset are skipped:
	// they were trained on a structurally different version of the data
	// and would index it wrongly.
	var stored []string
	if s.store != nil {
		schema := schemaSignature(d)
		entries, err := s.store.List()
		var newest time.Time
		if err == nil {
			for _, e := range entries {
				if e.Dataset != d.Name {
					continue
				}
				spec, ok := ce.Lookup(e.Model)
				if !ok {
					continue
				}
				artSchema, size, err := s.store.Info(e.Dataset, e.Model)
				if err != nil {
					// Corrupt or unreadable: the tenant onboards without
					// this model rather than failing.
					log.Printf("skipping unreadable artifact for (%s, %s): %v", e.Dataset, e.Model, err)
					continue
				}
				if artSchema != schema {
					continue
				}
				tn.models[e.Model] = newStubModel(spec, d.Name, schema, size)
				stored = append(stored, e.Model)
				// active tracks the most recently trained model, as it
				// does on the live /train path; artifact mtime is the
				// training order a restart can recover.
				if fi, err := os.Stat(e.Path); err == nil && (tn.active == "" || fi.ModTime().After(newest)) {
					newest = fi.ModTime()
					tn.active = e.Model
				}
			}
		}
		sort.Strings(stored)
		if tn.active == "" && len(stored) > 0 {
			tn.active = stored[0]
		}
	}

	h := s.fleet.getOrCreate(d.Name)
	h.mu.Lock()
	if old := h.snap.Load(); old != nil {
		// Replacing a dataset drops its cached engine/statistics state;
		// previously trained models describe the old data and are dropped
		// with it (stored artifacts above were re-registered explicitly).
		// forget, not evict: the old models' state must not be written
		// back over artifacts the new tenant generation now owns.
		engine.InvalidateIndex(old.d)
		dataset.InvalidateStats(old.d)
		for _, sm := range old.models {
			s.cache.forget(sm)
		}
	}
	h.snap.Store(tn)
	h.mu.Unlock()

	return &datasetResponse{
		Dataset: d.Name, Tables: d.NumTables(), Rows: d.TotalRows(),
		VertexDim: serving.InDim(), StoredModels: stored,
	}, http.StatusOK, nil
}

// recoverTenants replays the tenant manifest through the onboarding core:
// every dataset this shard still backs is re-onboarded (re-registering
// its stored artifacts as cold-loadable stubs), so a restarted shard
// resumes serving estimates with zero client action. Entries the shard no
// longer backs (a topology change between runs) are skipped but kept in
// the manifest. Failures are logged, not fatal: one bad entry must not
// keep the rest of the fleet's tenants down.
func (s *server) recoverTenants() {
	entries := s.manifest.snapshot()
	recovered := 0
	for name, payload := range entries {
		if s.shard != nil && !s.shard.backs(name) {
			continue
		}
		var req datasetRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			log.Printf("manifest recovery: decoding %q: %v", name, err)
			continue
		}
		if _, _, err := s.onboard(&req); err != nil {
			log.Printf("manifest recovery: onboarding %q: %v", name, err)
			continue
		}
		recovered++
	}
	if len(entries) > 0 {
		log.Printf("manifest recovery: re-onboarded %d of %d recorded tenants", recovered, len(entries))
	}
}

// ------------------------------------------------------------------ train

type trainRequest struct {
	Dataset string `json:"dataset"`
	// Model names the registry model to train; empty means "train the
	// model the advisor recommends for this dataset under wa".
	Model      string   `json:"model"`
	Wa         *float64 `json:"wa"`          // recommendation weight when Model == "" (default 0.9; explicit 0 is honored)
	Queries    int      `json:"queries"`     // labeled workload size (default 160)
	SampleRows int      `json:"sample_rows"` // join-sample cap (default 800)
	Fast       *bool    `json:"fast"`        // reduced training budget (default true)
	Seed       int64    `json:"seed"`
}

type trainResponse struct {
	Dataset     string  `json:"dataset"`
	Model       string  `json:"model"`
	Recommended bool    `json:"recommended"` // model came from the advisor
	Wa          float64 `json:"wa,omitempty"`
	TrainMillis int64   `json:"train_millis"`
	Artifact    string  `json:"artifact,omitempty"`
}

func (s *server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req trainRequest
	if !decodePost(w, r, &req) {
		return
	}
	if !s.shardPrimaryOK(w, req.Dataset) {
		return
	}
	tn := s.fleet.tenant(req.Dataset)
	if tn == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("dataset %q is not onboarded (POST /datasets first)", req.Dataset))
		return
	}
	if req.Queries < 0 || req.Queries > maxTrainQueries {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("queries %d outside [0, %d]", req.Queries, maxTrainQueries))
		return
	}
	if req.SampleRows < 0 || req.SampleRows > maxSampleRows {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("sample_rows %d outside [0, %d]", req.SampleRows, maxSampleRows))
		return
	}
	if req.Wa != nil && (*req.Wa < 0 || *req.Wa > 1) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("wa %g outside [0,1]", *req.Wa))
		return
	}

	name := req.Model
	recommended := false
	wa := defaultWa
	if req.Wa != nil {
		wa = *req.Wa
	}
	if name == "" {
		rec := s.adv.Serving().Recommend(tn.graph, wa)
		// rec.Model indexes the candidate set (the advisor's label space),
		// not the registry; translate before looking the model up.
		n, ok := testbed.CandidateModelName(rec.Model)
		if !ok {
			writeError(w, http.StatusInternalServerError, "advisor returned no usable recommendation")
			return
		}
		name = n
		recommended = true
	}
	spec, ok := ce.Lookup(name)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("model %q is not registered (see GET /models)", name))
		return
	}
	if spec.Kind == ce.Composite {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("model %q is composite; train its members instead", name))
		return
	}

	cfg := testbed.Config{NumQueries: 160, SampleRows: 800, Fast: true, Seed: req.Seed}
	if req.Queries > 0 {
		cfg.NumQueries = req.Queries
	}
	if req.SampleRows > 0 {
		cfg.SampleRows = req.SampleRows
	}
	if req.Fast != nil {
		cfg.Fast = *req.Fast
	}

	// Bounded single-flight training: at most one Fit runs at a time, at
	// most TrainQueue requests wait for the slot (429 beyond that), and
	// the wait itself is bounded by the request deadline.
	release, err := s.adm.AdmitTrain(r.Context())
	if err != nil {
		writeOverload(w, err)
		return
	}

	t0 := time.Now()
	ctx := r.Context()
	in, err := testbed.NewTrainInputForCtx(ctx, tn.d, cfg, spec.Kind)
	if err != nil {
		release()
		writeDeadline(w, "training (input staging)", err)
		return
	}
	m := spec.New(ce.Config{Fast: cfg.Fast, Seed: cfg.Seed})
	// Fit runs in its own goroutine behind a panic fence, so the handler
	// can answer the deadline without waiting for the trainer's next
	// cancellation checkpoint; the abandoned goroutine observes in.Ctx at
	// its epoch boundaries and winds down on its own.
	done := make(chan error, 1)
	go func() { done <- resilience.Guard("train:"+name, func() error { return m.Fit(in) }) }()
	select {
	case err := <-done:
		release()
		var pe *resilience.PanicError
		switch {
		case errors.As(err, &pe):
			log.Printf("training %s panicked: %v\n%s", name, pe.Value, pe.Stack)
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("training %s: internal error", name))
			return
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			writeDeadline(w, "training "+name, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("training %s: %v", name, err))
			return
		}
	case <-ctx.Done():
		// Keep the single-flight slot held until the abandoned trainer
		// actually reaches a checkpoint and stops — the next train must
		// not start while this one is still burning CPU.
		go func() { <-done; release() }()
		writeDeadline(w, "training "+name, context.Cause(ctx))
		return
	}
	elapsed := time.Since(t0)

	resp := trainResponse{
		Dataset: req.Dataset, Model: name, Recommended: recommended,
		TrainMillis: elapsed.Milliseconds(),
	}
	if recommended {
		resp.Wa = wa
	}

	// Publish under this tenant's handle lock — no other tenant observes
	// anything. The model was trained against the dataset captured in tn;
	// if the dataset was replaced mid-training (same name, different data
	// — tenant clones share the dataset pointer, replacements do not),
	// both publishing the stale model and persisting its artifact would
	// leak a model indexed for data the tenant no longer holds, so
	// conflict instead. The artifact write happens under the same lock as
	// the pointer check: a replacement cannot slip between validation and
	// persistence.
	h := s.fleet.getOrCreate(req.Dataset)
	h.mu.Lock()
	cur := h.snap.Load()
	if cur == nil || cur.d != tn.d {
		h.mu.Unlock()
		// Training repopulated the replaced dataset's engine-index and
		// stats caches after onboarding invalidated them; drop them again
		// so the unreachable dataset is not pinned for process lifetime.
		engine.InvalidateIndex(tn.d)
		dataset.InvalidateStats(tn.d)
		writeError(w, http.StatusConflict, fmt.Sprintf("dataset %q was replaced during training; re-train against the new data", req.Dataset))
		return
	}
	// Forget the superseded model before writing the new artifact: its
	// eviction write-back racing the new Save would clobber the fresh
	// artifact with pre-retrain state.
	old := cur.models[name]
	if old != nil {
		s.cache.forget(old)
	}
	var size int64
	if s.store != nil {
		path, err := s.store.Save(req.Dataset, schemaSignature(tn.d), m)
		if err != nil {
			if old != nil {
				s.cache.unforget(old) // the old model resumes serving
			}
			h.mu.Unlock()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("persisting %s: %v", name, err))
			return
		}
		resp.Artifact = path
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
	}
	sm := newServedModel(spec, m, req.Dataset, schemaSignature(tn.d))
	s.cache.install(sm, size)
	nt := cur.clone()
	nt.models[name] = sm
	nt.active = name
	h.snap.Store(nt)
	h.mu.Unlock()

	writeJSON(w, http.StatusOK, resp)
}

// --------------------------------------------------------------- estimate

type queryPayload struct {
	Tables []int `json:"tables"`
	Joins  []struct {
		LeftTable  int `json:"left_table"`
		LeftCol    int `json:"left_col"`
		RightTable int `json:"right_table"`
		RightCol   int `json:"right_col"`
	} `json:"joins"`
	Preds []struct {
		Table int   `json:"table"`
		Col   int   `json:"col"`
		Lo    int64 `json:"lo"`
		Hi    int64 `json:"hi"`
	} `json:"preds"`
}

func (p *queryPayload) toQuery(d *dataset.Dataset) (*workload.Query, error) {
	q := engine.Query{Tables: p.Tables}
	for _, j := range p.Joins {
		q.Joins = append(q.Joins, engine.Join{
			LeftTable: j.LeftTable, LeftCol: j.LeftCol,
			RightTable: j.RightTable, RightCol: j.RightCol,
		})
	}
	for _, pr := range p.Preds {
		q.Preds = append(q.Preds, engine.Predicate{Table: pr.Table, Col: pr.Col, Lo: pr.Lo, Hi: pr.Hi})
	}
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("query lists no tables")
	}
	if err := q.Validate(d); err != nil {
		return nil, err
	}
	return &workload.Query{Query: q, TrueCard: -1}, nil
}

type estimateRequest struct {
	Dataset string `json:"dataset"`
	// Model selects among the dataset's trained models; empty uses the
	// most recently trained one.
	Model   string          `json:"model"`
	Query   *queryPayload   `json:"query"`
	Queries []*queryPayload `json:"queries"`
}

type estimateResponse struct {
	Dataset   string    `json:"dataset"`
	Model     string    `json:"model"`
	Estimate  float64   `json:"estimate,omitempty"` // single-query form
	Estimates []float64 `json:"estimates"`
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if !decodePost(w, r, &req) {
		return
	}
	if !s.shardReadOK(w, req.Dataset) {
		return
	}
	tn := s.fleet.tenant(req.Dataset)
	if tn == nil {
		if s.readRepair(w, r, req.Dataset, &req) {
			return
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("dataset %q is not onboarded", req.Dataset))
		return
	}
	if (req.Query == nil) == (len(req.Queries) == 0) {
		writeError(w, http.StatusBadRequest, "provide exactly one of \"query\" or \"queries\"")
		return
	}
	name := req.Model
	if name == "" {
		name = tn.active
	}
	if name == "" {
		writeError(w, http.StatusConflict, fmt.Sprintf("dataset %q has no trained model (POST /train first)", req.Dataset))
		return
	}
	sm, ok := tn.models[name]
	if !ok {
		// Replica path: the model may have been trained by the primary
		// after this shard onboarded the tenant. Probe the shared artifact
		// store and register a cold-loadable stub on the fly.
		if sm = s.discoverStored(req.Dataset, name); sm == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no trained %q model for dataset %q", name, req.Dataset))
			return
		}
	}

	payloads := req.Queries
	if req.Query != nil {
		payloads = []*queryPayload{req.Query}
	}
	if len(payloads) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds %d queries", len(payloads), maxBatchQueries))
		return
	}
	qs := make([]*workload.Query, len(payloads))
	for i, p := range payloads {
		if p == nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d is null", i))
			return
		}
		q, err := p.toQuery(tn.d)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		qs[i] = q
	}

	var ests []float64
	var err error
	if len(qs) == 1 && !s.opts.NoCoalesce {
		// Coalesce concurrent single-query calls for the same served model
		// into one batched ride: the merged batch admits once at its
		// merged weight and dispatches one EstimateBatch. The key includes
		// the servedModel's identity, so calls resolved against different
		// generations (a retrain mid-flight) never merge — their queries
		// were validated against different datasets. The batch runs under
		// its own deadline: a merged execution must not inherit one
		// caller's nearly-expired context, because every other member
		// still needs the results.
		key := req.Dataset + "\x00" + name + "\x00" + fmt.Sprintf("%p", sm)
		ests, err = s.coalesce.Do(key, qs, func(batch []*workload.Query) ([]float64, error) {
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.EstimateDeadline)
			defer cancel()
			release, err := s.adm.AdmitCheap(ctx, int64(len(batch)))
			if err != nil {
				return nil, err
			}
			defer release()
			return sm.estimate(ctx, s.cache, batch)
		})
	} else {
		// Admit into the cheap class at batch weight, so one huge batch
		// competes fairly with many small ones (AdmitCheap clamps
		// oversized weights to the class capacity).
		release, aerr := s.adm.AdmitCheap(r.Context(), int64(len(qs)))
		if aerr != nil {
			writeOverload(w, aerr)
			return
		}
		ests, err = sm.estimate(r.Context(), s.cache, qs)
		release()
	}
	switch {
	case errors.Is(err, errModelQuarantined):
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("model %q for dataset %q is quarantined after an inference panic; POST /train to restore it", name, req.Dataset))
		return
	case errors.Is(err, errModelSuperseded):
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("model %q for dataset %q was retrained mid-request; retry against the new model", name, req.Dataset))
		return
	case err != nil:
		writeDeadline(w, "estimate", err)
		return
	}
	resp := estimateResponse{Dataset: req.Dataset, Model: name, Estimates: ests}
	if req.Query != nil {
		resp.Estimate = ests[0]
	}
	writeJSON(w, http.StatusOK, resp)
}

// discoverStored registers a cold-loadable stub for an artifact another
// shard (the primary) wrote to the shared store after this shard
// onboarded the tenant — the lazy path by which trained models reach
// replicas without any fan-out. Returns nil when no matching, schema-
// compatible artifact exists. Only the artifact wrapper is read; the
// model decodes through the model cache on first estimate, exactly like
// a restart's cold load.
func (s *server) discoverStored(dsName, model string) *servedModel {
	if s.store == nil {
		return nil
	}
	spec, ok := ce.Lookup(model)
	if !ok || spec.Kind == ce.Composite {
		return nil
	}
	h := s.fleet.getOrCreate(dsName)
	h.mu.Lock()
	defer h.mu.Unlock()
	tn := h.snap.Load()
	if tn == nil {
		return nil
	}
	if sm := tn.models[model]; sm != nil {
		return sm // another request discovered it first
	}
	schema := schemaSignature(tn.d)
	artSchema, size, err := s.store.Info(dsName, model)
	if err != nil || artSchema != schema {
		return nil
	}
	sm := newStubModel(spec, dsName, schema, size)
	nt := tn.clone()
	nt.models[model] = sm
	if nt.active == "" {
		nt.active = model
	}
	h.snap.Store(nt)
	return sm
}

// ----------------------------------------------------------------- models

type modelInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Candidate  bool   `json:"candidate"`
	Concurrent bool   `json:"concurrent"`
}

type trainedInfo struct {
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	Active  bool   `json:"active"`
	// Residency is the paging state: "loaded" (decoded in memory),
	// "evicted" (cold-loadable from the artifact store on next estimate),
	// or "quarantined" (failing fast until retrained).
	Residency string `json:"residency"`
	SizeBytes int64  `json:"size_bytes,omitempty"` // artifact byte cost
}

type modelsResponse struct {
	Models  []modelInfo   `json:"models"`
	Trained []trainedInfo `json:"trained"`
	// Cache reports the model cache's budget utilization and paging
	// counters.
	Cache cacheStats `json:"cache"`
}

// handleModels lists the registry, the trained models per dataset with
// their cache residency, and the cache's budget utilization.
func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := modelsResponse{Trained: []trainedInfo{}, Cache: s.cache.stats()}
	for _, spec := range ce.Specs() {
		resp.Models = append(resp.Models, modelInfo{
			Name: spec.Name, Kind: spec.Kind.String(),
			Candidate: spec.Candidate, Concurrent: spec.Concurrent,
		})
	}
	tenants := s.fleet.snapshot()
	var dsNames []string
	for name := range tenants {
		dsNames = append(dsNames, name)
	}
	sort.Strings(dsNames)
	for _, dn := range dsNames {
		tn := tenants[dn]
		var mNames []string
		for mn := range tn.models {
			mNames = append(mNames, mn)
		}
		sort.Strings(mNames)
		for _, mn := range mNames {
			sm := tn.models[mn]
			resident, size := s.cache.residency(sm)
			res := "loaded"
			switch {
			case sm.quarantined.Load():
				res = "quarantined"
			case !resident:
				res = "evicted"
			}
			resp.Trained = append(resp.Trained, trainedInfo{
				Dataset: dn, Model: mn, Active: mn == tn.active,
				Residency: res, SizeBytes: size,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
