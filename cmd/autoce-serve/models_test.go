package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ce"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/testbed"
)

// datasetBody converts an in-memory dataset to the /datasets payload.
func datasetBody(d *dataset.Dataset) map[string]any {
	var tables []map[string]any
	for _, t := range d.Tables {
		var cols []map[string]any
		for _, c := range t.Cols {
			cols = append(cols, map[string]any{"name": c.Name, "data": c.Data})
		}
		tb := map[string]any{"name": t.Name, "cols": cols}
		if t.PKCol >= 0 {
			tb["pk"] = t.PKCol
		}
		tables = append(tables, tb)
	}
	var fks []map[string]any
	for _, fk := range d.FKs {
		fks = append(fks, map[string]any{
			"from_table": fk.FromTable, "from_col": fk.FromCol,
			"to_table": fk.ToTable, "to_col": fk.ToCol,
		})
	}
	return map[string]any{"name": d.Name, "tables": tables, "fks": fks}
}

func serveDataset(t testing.TB, tables int, seed int64) *dataset.Dataset {
	t.Helper()
	p := datagen.Params{
		Tables:  tables,
		MinCols: 2, MaxCols: 3,
		MinRows: 80, MaxRows: 140,
		Domain: 25,
		SkewLo: 0, SkewHi: 0.8,
		CorrLo: 0, CorrHi: 0.5,
		JoinLo: 0.5, JoinHi: 1,
		Seed: seed,
	}
	d, err := datagen.Generate("served", p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOnboardReportsValidatedEncoderDim is the regression for the
// snapshotonce finding autoce-vet raised in handleDatasets: the handler
// loaded the advisor snapshot twice — once to validate the dataset's
// feature dimension, once to report VertexDim — so a republish between
// the two loads could validate against one encoder and report another's
// dimension. The handler now takes a single snapshot, and the reported
// VertexDim must be the dimension onboarding was validated against.
// (Reintroducing the second load also fails the analyzer driver test in
// internal/analysis.)
func TestOnboardReportsValidatedEncoderDim(t *testing.T) {
	adv, _ := testAdvisor(t, 14)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	d := serveDataset(t, 2, 33)

	resp, data := postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/datasets returned %d: %s", resp.StatusCode, data)
	}
	var dr datasetResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if want := adv.Serving().InDim(); dr.VertexDim != want {
		t.Fatalf("onboard reported VertexDim %d, validated against %d", dr.VertexDim, want)
	}
}

// TestServeLifecycleEndToEnd drives the full loop the redesign closes:
// onboard a dataset, recommend by dataset name, train the recommended
// model, estimate single and batch, and verify artifact persistence plus
// reload on re-onboarding.
func TestServeLifecycleEndToEnd(t *testing.T) {
	adv, _ := testAdvisor(t, 14)
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(adv, store))
	defer ts.Close()
	d := serveDataset(t, 2, 31)

	// Onboard.
	resp, data := postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/datasets returned %d: %s", resp.StatusCode, data)
	}
	var dr datasetResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Dataset != d.Name || dr.Tables != d.NumTables() || dr.Rows != d.TotalRows() {
		t.Fatalf("onboard response %+v mismatches dataset", dr)
	}

	// Recommend by dataset name.
	resp, data = postJSON(t, ts, "/recommend", map[string]any{"dataset": d.Name, "wa": 0.9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend by dataset returned %d: %s", resp.StatusCode, data)
	}
	var rec recommendResponse
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ModelName == "" {
		t.Fatalf("recommendation has no model name: %+v", rec)
	}

	// Train the recommended model (explicitly, exercising the model field).
	resp, data = postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "model": rec.ModelName, "queries": 60, "sample_rows": 200,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/train returned %d: %s", resp.StatusCode, data)
	}
	var tr trainResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Model != rec.ModelName || tr.Recommended {
		t.Fatalf("train response %+v", tr)
	}
	if tr.Artifact == "" {
		t.Fatal("train with a store did not persist an artifact")
	}

	// Also train through the recommendation path (empty model).
	resp, data = postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "wa": 0.9, "queries": 60, "sample_rows": 200,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/train (recommended) returned %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Recommended || tr.Model != rec.ModelName {
		t.Fatalf("recommended train response %+v, want model %s", tr, rec.ModelName)
	}

	// Estimate: single query.
	lo, hi := d.Tables[0].Col(0).MinMax()
	single := map[string]any{
		"dataset": d.Name,
		"query": map[string]any{
			"tables": []int{0},
			"preds":  []map[string]any{{"table": 0, "col": 0, "lo": lo, "hi": hi}},
		},
	}
	resp, data = postJSON(t, ts, "/estimate", single)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate returned %d: %s", resp.StatusCode, data)
	}
	var er estimateResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Model != rec.ModelName || len(er.Estimates) != 1 {
		t.Fatalf("estimate response %+v", er)
	}
	if er.Estimate < 1 || math.IsNaN(er.Estimate) || math.IsInf(er.Estimate, 0) {
		t.Fatalf("estimate %g not a finite cardinality >= 1", er.Estimate)
	}

	// Estimate: batch form over every table.
	var batch []map[string]any
	for ti := range d.Tables {
		lo, hi := d.Tables[ti].Col(0).MinMax()
		batch = append(batch, map[string]any{
			"tables": []int{ti},
			"preds":  []map[string]any{{"table": ti, "col": 0, "lo": lo, "hi": (lo + hi) / 2}},
		})
	}
	resp, data = postJSON(t, ts, "/estimate", map[string]any{"dataset": d.Name, "queries": batch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate batch returned %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Estimates) != len(batch) {
		t.Fatalf("batch returned %d estimates for %d queries", len(er.Estimates), len(batch))
	}
	for i, est := range er.Estimates {
		if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("batch estimate %d = %g", i, est)
		}
	}

	// Re-onboarding reloads the persisted artifacts.
	resp, data = postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-onboard returned %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.StoredModels) == 0 {
		t.Fatalf("re-onboard reloaded no stored models: %+v", dr)
	}
	resp, data = postJSON(t, ts, "/estimate", single)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate after reload returned %d: %s", resp.StatusCode, data)
	}
}

func TestServeModelsListing(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/models returned %d", resp.StatusCode)
	}
	var mr modelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) != testbed.NumModels {
		t.Fatalf("/models lists %d models, registry has %d", len(mr.Models), testbed.NumModels)
	}
	candidates := 0
	for i, mi := range mr.Models {
		if mi.Name != testbed.ModelNames[i] {
			t.Fatalf("/models order %v diverges from registry", mr.Models)
		}
		if mi.Kind == "" {
			t.Fatalf("model %s has empty kind", mi.Name)
		}
		if mi.Candidate {
			candidates++
		}
	}
	if candidates != testbed.NumCandidates {
		t.Fatalf("/models lists %d candidates, want %d", candidates, testbed.NumCandidates)
	}
	if len(mr.Trained) != 0 {
		t.Fatalf("fresh server lists trained models: %+v", mr.Trained)
	}

	// POST is rejected.
	pr, err := http.Post(ts.URL+"/models", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /models returned %d, want 405", pr.StatusCode)
	}
}

// TestServeTrainEstimateValidation covers the strict-validation surface of
// the new endpoints, including malformed payloads.
func TestServeTrainEstimateValidation(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	d := serveDataset(t, 2, 77)
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(d)); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard failed: %d %s", resp.StatusCode, data)
	}

	cases := []struct {
		path string
		body map[string]any
		want int
	}{
		// /datasets validation.
		{"/datasets", map[string]any{}, http.StatusBadRequest},                        // no name
		{"/datasets", map[string]any{"name": "x"}, http.StatusBadRequest},             // no tables
		{"/datasets", map[string]any{"name": "x", "bogus": 1}, http.StatusBadRequest}, // unknown field
		{"/datasets", map[string]any{"name": "x", "tables": []map[string]any{
			{"name": "t", "cols": []map[string]any{}}}}, http.StatusBadRequest}, // no columns
		{"/datasets", map[string]any{"name": "x", "tables": []map[string]any{
			{"name": "t", "cols": []map[string]any{{"name": "c", "data": []int64{1, 2}}}}},
			"fks": []map[string]any{{"from_table": 5, "from_col": 0, "to_table": 0, "to_col": 0}}},
			http.StatusBadRequest}, // FK out of range
		{"/datasets", map[string]any{"name": "x", "tables": []map[string]any{
			{"name": "t", "pk": 7, "cols": []map[string]any{{"name": "c", "data": []int64{1, 2}}}}}},
			http.StatusBadRequest}, // PK out of range
		{"/datasets", map[string]any{"name": "x", "tables": []map[string]any{
			{"name": "t", "cols": []map[string]any{
				{"name": "a", "data": []int64{1, 2}},
				{"name": "b", "data": []int64{1}}}}}}, http.StatusBadRequest}, // ragged columns
		// /train validation.
		{"/train", map[string]any{"dataset": "missing"}, http.StatusNotFound},
		{"/train", map[string]any{"dataset": d.Name, "model": "NoSuch"}, http.StatusBadRequest},
		{"/train", map[string]any{"dataset": d.Name, "model": "Ensemble"}, http.StatusBadRequest}, // composite
		{"/train", map[string]any{"dataset": d.Name, "queries": -1}, http.StatusBadRequest},
		{"/train", map[string]any{"dataset": d.Name, "queries": maxTrainQueries + 1}, http.StatusBadRequest},
		{"/train", map[string]any{"dataset": d.Name, "sample_rows": maxSampleRows + 1}, http.StatusBadRequest},
		{"/train", map[string]any{"dataset": d.Name, "wa": 1.5}, http.StatusBadRequest},
		{"/train", map[string]any{"dataset": d.Name, "bogus": true}, http.StatusBadRequest},
		// /estimate validation (no trained model yet -> 409).
		{"/estimate", map[string]any{"dataset": d.Name,
			"query": map[string]any{"tables": []int{0}}}, http.StatusConflict},
		{"/estimate", map[string]any{"dataset": "missing",
			"query": map[string]any{"tables": []int{0}}}, http.StatusNotFound},
		{"/estimate", map[string]any{"dataset": d.Name}, http.StatusBadRequest}, // neither query nor queries
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s with %v returned %d (%s), want %d", tc.path, tc.body, resp.StatusCode, data, tc.want)
		}
		var e map[string]any
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s error body %q lacks an error message", tc.path, data)
		}
	}

	// Train a fast model, then exercise query-shape validation.
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "model": "Postgres", "queries": 40, "sample_rows": 100,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("train Postgres: %d %s", resp.StatusCode, data)
	}
	badQueries := []map[string]any{
		{"tables": []int{}},  // empty
		{"tables": []int{9}}, // unknown table
		{"tables": []int{0}, "preds": []map[string]any{{"table": 0, "col": 99, "lo": 1, "hi": 2}}}, // bad col
		{"tables": []int{0}, "joins": []map[string]any{
			{"left_table": 0, "left_col": 0, "right_table": 1, "right_col": 0}}}, // join to unlisted table
	}
	for _, q := range badQueries {
		resp, data := postJSON(t, ts, "/estimate", map[string]any{"dataset": d.Name, "query": q})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/estimate with %v returned %d (%s), want 400", q, resp.StatusCode, data)
		}
	}
	// Estimating with an untrained (but registered) model name is a 404.
	resp, _ := postJSON(t, ts, "/estimate", map[string]any{
		"dataset": d.Name, "model": "MSCN", "query": map[string]any{"tables": []int{0}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untrained model estimate returned %d, want 404", resp.StatusCode)
	}
	// Oversized batch.
	tooMany := make([]map[string]any, maxBatchQueries+1)
	for i := range tooMany {
		tooMany[i] = map[string]any{"tables": []int{0}}
	}
	resp, _ = postJSON(t, ts, "/estimate", map[string]any{"dataset": d.Name, "queries": tooMany})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch returned %d, want 400", resp.StatusCode)
	}
}

// TestServeEstimateTrainRace hammers /estimate batch traffic while /train
// republishes the model snapshot; with -race this exercises the atomic
// zooState swap and the per-model guard under real HTTP concurrency.
func TestServeEstimateTrainRace(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	d := serveDataset(t, 1, 99)
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(d)); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard failed: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "model": "Postgres", "queries": 30, "sample_rows": 80,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("initial train failed: %d %s", resp.StatusCode, data)
	}

	lo, hi := d.Tables[0].Col(0).MinMax()
	var queries []map[string]any
	for i := 0; i < 8; i++ {
		queries = append(queries, map[string]any{
			"tables": []int{0},
			"preds":  []map[string]any{{"table": 0, "col": 0, "lo": lo, "hi": lo + (hi-lo)*int64(i+1)/8}},
		})
	}
	body, err := json.Marshal(map[string]any{"dataset": d.Name, "queries": queries})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/estimate returned %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	// Republishing trains: LW-XGB is cheap and becomes the new active
	// model mid-traffic; in-flight estimates keep their snapshot.
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts, "/train", map[string]any{
			"dataset": d.Name, "model": "LW-XGB", "queries": 30, "sample_rows": 80, "seed": i,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train republish %d failed: %d %s", i, resp.StatusCode, data)
		}
	}
	wg.Wait()
}

// TestServeReonboardSchemaMismatchSkipsArtifacts pins the reload guard:
// artifacts trained on a structurally different version of a dataset must
// not be served after the dataset is re-onboarded with a new schema.
func TestServeReonboardSchemaMismatchSkipsArtifacts(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(adv, store))
	defer ts.Close()

	d := serveDataset(t, 1, 55)
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(d)); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard failed: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "model": "Postgres", "queries": 30, "sample_rows": 80,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("train failed: %d %s", resp.StatusCode, data)
	}

	// Re-onboard under the same name with a different shape (2 tables).
	d2 := serveDataset(t, 2, 56)
	d2.Name = d.Name
	resp, data := postJSON(t, ts, "/datasets", datasetBody(d2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-onboard failed: %d %s", resp.StatusCode, data)
	}
	var dr datasetResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.StoredModels) != 0 {
		t.Fatalf("schema-mismatched artifacts reloaded: %v", dr.StoredModels)
	}
	// The stale model must not serve: no trained model for the new data.
	resp, _ = postJSON(t, ts, "/estimate", map[string]any{
		"dataset": d.Name, "query": map[string]any{"tables": []int{1}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("estimate against stale model returned %d, want 409", resp.StatusCode)
	}

	// Re-onboarding the original shape brings the artifact back.
	resp, data = postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore onboard failed: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.StoredModels) != 1 || dr.StoredModels[0] != "Postgres" {
		t.Fatalf("matching artifact not reloaded: %v", dr.StoredModels)
	}
}

// TestServeTrainHonorsExplicitZeroWa pins the wa plumbing: an explicit
// wa=0 (pure efficiency weighting) must drive the recommendation /train
// acts on, not be silently rewritten to the default.
func TestServeTrainHonorsExplicitZeroWa(t *testing.T) {
	adv, _ := testAdvisor(t, 12)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	d := serveDataset(t, 1, 61)
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(d)); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard failed: %d %s", resp.StatusCode, data)
	}

	_, data := postJSON(t, ts, "/recommend", map[string]any{"dataset": d.Name, "wa": 0})
	var rec recommendResponse
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "wa": 0, "queries": 40, "sample_rows": 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/train wa=0 returned %d: %s", resp.StatusCode, data)
	}
	var tr trainResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Recommended || tr.Model != rec.ModelName {
		t.Fatalf("wa=0 trained %q, recommendation under wa=0 was %q (%+v)", tr.Model, rec.ModelName, tr)
	}
}
