// Command autoce-serve exposes a trained advisor as an HTTP/JSON model
// lifecycle service — the paper's cloud-vendor scenario (Section I) as an
// actual server, closed into a loop: onboard a dataset, get a
// recommendation, train the recommended estimator through the ce registry,
// and serve cardinality estimates from it. It loads a gob advisor written
// by `autoce -save` (or core.Advisor.SaveFile) and serves:
//
//	POST /recommend  {"v": [[...]], "e": [[...]], "wa": 0.9, "k": 2}
//	                 or {"dataset": "db1", "wa": 0.9}
//	                 -> the selected model, its averaged score vector, and
//	                    the RCS neighbors consulted
//	POST /drift      {"v": [[...]], "e": [[...]]}
//	                 -> whether the graph lies outside the trained
//	                    distribution, with distance and threshold
//	POST /adapt      {"name": "...", "v": ..., "e": ..., "sa": [...],
//	                  "se": [...], "epochs": 2}
//	                 -> online-adapts the advisor with a freshly labeled
//	                    sample (Section V-E) and reports the new RCS size
//	POST /datasets   {"name": "db1", "tables": [{"name": "t0", "pk": 0,
//	                  "cols": [{"name": "c0", "data": [1,2,3]}]}],
//	                  "fks": [{"from_table":1,"from_col":0,
//	                           "to_table":0,"to_col":0}]}
//	                 -> onboards (or replaces) a dataset for training and
//	                    estimation; reloads its stored model artifacts
//	POST /train      {"dataset": "db1", "model": "MSCN"} or
//	                 {"dataset": "db1", "wa": 0.9} (train the recommended
//	                 model) -> trains through the registry, persists the
//	                 artifact (with -model-dir), and atomically publishes
//	                 the model for /estimate
//	POST /estimate   {"dataset": "db1", "query": {...}} or
//	                 {"dataset": "db1", "queries": [{...}, ...]}
//	                 -> cardinality estimates from the trained model's
//	                    batched hot path
//	GET  /models     -> the estimator registry (name/kind/candidate), the
//	                    trained models per dataset with their cache
//	                    residency (loaded/evicted/quarantined), and the
//	                    model cache's budget utilization
//	GET  /healthz    -> liveness plus RCS/dataset/model counts, model
//	                    cache and artifact-store stats, shard identity
//	GET  /readyz     -> readiness: 200 while accepting traffic, 503 once
//	                    shutdown begins (load-balancer drain signal)
//
// The graph payload is the feature graph of internal/feature: "v" is the
// n×VertexDim vertex matrix, "e" the n×n weighted adjacency matrix. Query
// payloads use dataset-level table/column indexes with closed-interval
// range predicates.
//
// Requests are served from lock-free snapshots: the advisor's
// core.Snapshot, and one atomically-published snapshot per tenant
// dataset — republishing one tenant (retrain, re-onboard) never swaps
// another tenant's view. Any number of /recommend, /drift, and /estimate
// calls proceed concurrently; /adapt, /datasets, and /train mutate in
// the background of those reads and atomically publish successor
// snapshots. Shutdown is graceful: SIGINT/SIGTERM flip /readyz to 503,
// stop the listener, and drain in-flight requests.
//
// # Multi-tenancy
//
// Three mechanisms make "thousands of tenant datasets" the design point
// (see README "Multi-tenant serving"):
//
//   - A budgeted model cache (-model-budget, -model-mem-budget) pages
//     trained models between memory and the -model-dir artifact store,
//     LRU-first; evicted models cold-load transparently and
//     bit-identically on the next estimate (cache.go).
//   - Concurrent single-query /estimate calls for the same served model
//     coalesce into one EstimateBatch ride through admission
//     (-no-coalesce to disable).
//   - Rendezvous shard routing (-shard-index, -shard-count,
//     -shard-peers) splits the tenant space across a fleet, each dataset
//     mapping to a replica set of -replicas shards: the rendezvous
//     primary takes writes, every member serves reads (shard.go).
//
// # Fleet fault tolerance
//
// Per dataset, each endpoint's behavior by shard role (421 is
// Misdirected Request, naming the primary in X-Shard-Want/X-Shard-Peer;
// "forward" applies when -shard-peers is configured and the request
// carries X-Shard-Key but not X-Shard-Forwarded — forwarded requests
// never forward again):
//
//	endpoint             primary              replica               any other shard
//	/estimate            serves               serves (lazy stub     forwards across the
//	                                          from the shared       replica set with
//	                                          -model-dir store)     retry + hedge, else 421
//	/recommend, /drift   serves               serves                forwards (failover), else 421
//	/datasets            serves, records to   421 unless marked     forwards once to the
//	                     manifest, fans out   X-Shard-Replicate     primary, else 421
//	                     to replica set       (the primary fan-out)
//	/train               serves (replicas     421                   forwards once to the
//	                     pick the artifact                          primary, else 421
//	                     up lazily)
//
// Forwarding runs through per-peer circuit breakers (a crashed shard
// costs one failure window, not a timeout per request), a background
// /healthz prober whose rise/fall-filtered view orders failover targets,
// and — for /estimate — an optional hedged second forward fired at the
// observed forward-latency p90 with first-response-wins cancellation
// (-no-hedge disables). Reads retry with capped decorrelated-jitter
// backoff; writes are forwarded exactly once and never replayed. A
// forward that exhausts every option answers a JSON 502.
//
// Each shard also records every dataset payload it accepts in a
// CRC-enveloped tenant manifest (-manifest, defaulting into -model-dir)
// written tempfile+rename like the model artifacts; on restart the shard
// replays it through onboarding and resumes serving from stored
// artifacts with zero client action.
//
// # Resilience
//
// Every endpoint runs under a deadline and an admission class (the table
// in resilience.go lists both). Cheap snapshot reads and expensive
// mutators admit through disjoint semaphores, so saturating /train or
// /datasets never blocks /estimate: overload sheds with 503 +
// Retry-After (429 for a full train queue) while estimates keep flowing
// from the published snapshot. Handler panics are recovered (500, server
// stays up), and a panic inside model inference quarantines that one
// served model (503 for it alone) until it is retrained. Model artifacts
// are checksummed on disk; a truncated or bit-flipped artifact is
// quarantined to .corrupt and skipped on reload instead of being served.
// Fault injection for all of the above is armed via AUTOCE_FAILPOINTS
// (see internal/resilience).
//
// Usage:
//
//	autoce -train 40 -save advisor.gob
//	autoce-serve -advisor advisor.gob -addr :8080 -model-dir ./models
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ce"
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/resilience"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	advisorPath := flag.String("advisor", "", "path to a gob advisor written by core.Advisor.SaveFile (required)")
	addr := flag.String("addr", ":8080", "listen address")
	modelDir := flag.String("model-dir", "", "directory for trained-model artifacts; /train persists into it and /datasets reloads from it (empty = in-memory only)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slow-loris bound)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout (full-request read bound; covers a 64 MiB /datasets upload)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "http.Server WriteTimeout backstop; per-endpoint deadlines govern handler time (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	estimateDeadline := flag.Duration("estimate-deadline", 0, "per-request deadline for /estimate (0 = default 5s)")
	trainDeadline := flag.Duration("train-deadline", 0, "per-request deadline for /train (0 = default 120s)")
	onboardDeadline := flag.Duration("onboard-deadline", 0, "per-request deadline for /datasets and /adapt (0 = default 60s)")
	modelBudget := flag.Int("model-budget", 0, "max trained models resident in memory across all tenants; beyond it the LRU pages models out to -model-dir (0 = unlimited)")
	modelMemBudget := flag.String("model-mem-budget", "", "max artifact bytes resident in memory, e.g. 64MiB (empty/0 = unlimited); requires -model-dir to page out")
	noCoalesce := flag.Bool("no-coalesce", false, "disable merging concurrent single-query /estimate calls into batched rides")
	shardIndex := flag.Int("shard-index", 0, "this instance's shard number in a sharded fleet (see -shard-count)")
	shardCount := flag.Int("shard-count", 0, "total shards in the fleet; datasets are routed by rendezvous hash, others answer 421 (0/1 = unsharded)")
	shardPeers := flag.String("shard-peers", "", "comma-separated base URLs of all shards (including this one); enables fleet-proxy forwarding of X-Shard-Key requests")
	replicas := flag.Int("replicas", 2, "replica-set size per dataset: the rendezvous primary takes writes, runners-up also serve reads (clamped to -shard-count)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-attempt timeout for forwarded reads in the fleet proxy (0 = default 5s)")
	probeInterval := flag.Duration("probe-interval", 0, "peer /healthz probe interval (0 = default 2s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = default 1s)")
	noHedge := flag.Bool("no-hedge", false, "disable the hedged second /estimate forward (fired at the observed forward-latency p90)")
	manifestPath := flag.String("manifest", "", "crash-safe tenant manifest for restart recovery (default: <model-dir>/shard-<i>.manifest, or tenants.manifest unsharded; \"none\" disables)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (useful with -addr :0)")
	flag.Parse()
	if *advisorPath == "" {
		fmt.Fprintln(os.Stderr, "autoce-serve: -advisor is required")
		flag.Usage()
		os.Exit(2)
	}
	memBudget, err := parseByteSize(*modelMemBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoce-serve: -model-mem-budget: %v\n", err)
		os.Exit(2)
	}
	shard, err := newSharder(*shardIndex, *shardCount, *replicas, *shardPeers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoce-serve: %v\n", err)
		os.Exit(2)
	}
	manifest := *manifestPath
	switch {
	case manifest == "none":
		manifest = ""
	case manifest == "" && *modelDir != "":
		// Default next to the artifacts the recovered tenants serve from.
		if shard != nil {
			manifest = filepath.Join(*modelDir, fmt.Sprintf("shard-%d.manifest", shard.index))
		} else {
			manifest = filepath.Join(*modelDir, "tenants.manifest")
		}
	}

	adv, err := core.LoadFile(*advisorPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded advisor from %s (%d labeled datasets in the RCS, k=%d)",
		*advisorPath, adv.NumSamples(), adv.Serving().K())

	var store *ce.Store
	if *modelDir != "" {
		store, err = ce.NewStore(*modelDir)
		if err != nil {
			log.Fatal(err)
		}
		if entries, err := store.List(); err == nil {
			log.Printf("model store %s holds %d artifacts", *modelDir, len(entries))
		}
	}

	if fps := resilience.ActiveFailpoints(); len(fps) > 0 {
		log.Printf("WARNING: fault injection armed via %s: %v", resilience.FailpointEnv, fps)
	}

	app := newServerOpts(adv, store, serveOptions{
		EstimateDeadline: *estimateDeadline,
		TrainDeadline:    *trainDeadline,
		OnboardDeadline:  *onboardDeadline,
		ModelBudget:      *modelBudget,
		ModelMemBudget:   memBudget,
		NoCoalesce:       *noCoalesce,
		Shard:            shard,
		PeerTimeout:      *peerTimeout,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		NoHedge:          *noHedge,
		ManifestPath:     manifest,
	})
	srv := &http.Server{
		Handler:           app,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if app.peers != nil {
		// Background peer-health probing feeds the proxy's failover
		// ordering and the /healthz fleet table; it stops with the process.
		go app.peers.prober.Run(ctx)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		// Published after binding, so a harness spawning this process on
		// ":0" learns the kernel-assigned port.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	if shard != nil {
		log.Printf("serving on %s (shard %d of %d)", ln.Addr(), shard.index, shard.count)
	} else {
		log.Printf("serving on %s", ln.Addr())
	}

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	app.ready.Store(false) // /readyz goes 503: drain signal for load balancers
	log.Print("shutting down (draining in-flight requests)...")
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("bye")
}

// server holds the shared advisor, the artifact store, and the
// multi-tenant serving state behind the HTTP handlers.
type server struct {
	adv   *core.Advisor
	store *ce.Store // nil: in-memory only

	// fleet holds one atomically swapped snapshot per tenant dataset;
	// cache is the budgeted paging layer deciding which trained models
	// stay decoded in memory (see models.go and cache.go).
	fleet *fleet
	cache *modelCache
	// coalesce merges concurrent single-query /estimate calls for the
	// same served model into one batched ride; shard, when non-nil,
	// scopes this instance to its rendezvous replica sets (shard.go).
	coalesce *resilience.Coalescer[*workload.Query, float64]
	shard    *sharder
	// peers is the fleet proxy — breakers, prober, retry/hedge — when
	// shard peers are configured (proxy.go); manifest is the crash-safe
	// record of onboarded datasets replayed on restart (manifest.go).
	// Either may be nil.
	peers    *peerSet
	manifest *tenantManifest

	// adm is the two-class admission controller; opts carries the
	// per-endpoint deadlines (see resilience.go).
	adm  *resilience.Admission
	opts serveOptions
	// ready gates /readyz: true from construction until shutdown begins.
	ready atomic.Bool

	handler http.Handler
}

// ServeHTTP serves the wired mux (recovery middleware outermost).
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// newServer wires the endpoint handlers with the default resilience
// policy (split out of main so the httptest suite can drive the exact
// production routing).
func newServer(adv *core.Advisor, store *ce.Store) http.Handler {
	return newServerOpts(adv, store, serveOptions{})
}

// newServerOpts is newServer with an explicit resilience policy; tests
// shrink deadlines and class sizes through it.
func newServerOpts(adv *core.Advisor, store *ce.Store, opts serveOptions) *server {
	s := &server{adv: adv, store: store, opts: opts.withDefaults()}
	s.adm = resilience.NewAdmission(s.opts.Admission)
	s.fleet = newFleet()
	s.cache = newModelCache(store, s.opts.ModelBudget, s.opts.ModelMemBudget)
	s.coalesce = &resilience.Coalescer[*workload.Query, float64]{MaxBatch: maxBatchQueries}
	s.shard = s.opts.Shard
	if s.shard != nil && s.shard.peers != nil {
		s.peers = newPeerSet(s.shard, s.opts)
	}
	if s.opts.ManifestPath != "" {
		var err error
		s.manifest, err = newTenantManifest(s.opts.ManifestPath)
		if err != nil {
			// Corrupt manifests are quarantined inside newTenantManifest;
			// either way the returned manifest is usable and serving starts.
			log.Printf("WARNING: %v", err)
		}
		s.recoverTenants()
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", s.cheap(s.opts.QuickDeadline, s.handleRecommend))
	mux.HandleFunc("/drift", s.cheap(s.opts.QuickDeadline, s.handleDrift))
	mux.HandleFunc("/adapt", s.heavy(s.opts.OnboardDeadline, s.handleAdapt))
	mux.HandleFunc("/datasets", s.heavy(s.opts.OnboardDeadline, s.handleDatasets))
	mux.HandleFunc("/train", withDeadline(s.opts.TrainDeadline, s.handleTrain))
	// /estimate admits itself: the weight is the decoded batch size.
	mux.HandleFunc("/estimate", withDeadline(s.opts.EstimateDeadline, s.handleEstimate))
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	s.handler = recovered(s.shardRoute(mux))
	return s
}

// graphPayload is the JSON form of a feature graph.
type graphPayload struct {
	Name string      `json:"name"`
	V    [][]float64 `json:"v"`
	E    [][]float64 `json:"e"`
}

// toGraph validates shapes and converts the payload.
func (p *graphPayload) toGraph() (*feature.Graph, error) {
	n := len(p.V)
	if n == 0 {
		return nil, errors.New("graph has no vertices (empty \"v\")")
	}
	dim := len(p.V[0])
	if dim == 0 {
		return nil, errors.New("vertex features are empty")
	}
	for i, row := range p.V {
		if len(row) != dim {
			return nil, fmt.Errorf("vertex %d has %d features, want %d", i, len(row), dim)
		}
	}
	if len(p.E) != n {
		return nil, fmt.Errorf("adjacency has %d rows for %d vertices", len(p.E), n)
	}
	for i, row := range p.E {
		if len(row) != n {
			return nil, fmt.Errorf("adjacency row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return &feature.Graph{Name: p.Name, V: p.V, E: p.E}, nil
}

type recommendRequest struct {
	graphPayload
	// Dataset names an onboarded dataset; its extracted feature graph is
	// used instead of an inline v/e payload.
	Dataset string  `json:"dataset"`
	Wa      float64 `json:"wa"`
	K       int     `json:"k"` // 0 means the advisor's trained default
}

type neighborInfo struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

type recommendResponse struct {
	Model     int            `json:"model"`
	ModelName string         `json:"model_name,omitempty"`
	Scores    []float64      `json:"scores"`
	Neighbors []neighborInfo `json:"neighbors"`
	Wa        float64        `json:"wa"`
	K         int            `json:"k"`
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Wa < 0 || req.Wa > 1 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("wa %g outside [0,1]", req.Wa))
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k %d is negative", req.K))
		return
	}
	// One snapshot for both the recommendation and the neighbor names, so
	// the indexes resolve consistently even mid-/adapt.
	snap := s.adv.Serving()
	var g *feature.Graph
	if req.Dataset != "" {
		if len(req.V) != 0 || len(req.E) != 0 {
			writeError(w, http.StatusBadRequest, "provide either \"dataset\" or an inline graph, not both")
			return
		}
		if !s.shardReadOK(w, req.Dataset) {
			return
		}
		tn := s.fleet.tenant(req.Dataset)
		if tn == nil {
			if s.readRepair(w, r, req.Dataset, &req) {
				return
			}
			writeError(w, http.StatusNotFound, fmt.Sprintf("dataset %q is not onboarded", req.Dataset))
			return
		}
		g = tn.graph
	} else {
		g = graphFor(w, &req.graphPayload, snap.InDim())
		if g == nil {
			return
		}
	}
	k := req.K
	if k == 0 {
		k = snap.K()
	}
	rec := snap.RecommendK(g, req.Wa, k)
	resp := recommendResponse{Model: rec.Model, Scores: rec.Scores, Wa: req.Wa, K: k}
	// rec.Model indexes the candidate set (the advisor's label space);
	// translate to the registry name rather than indexing ModelNames.
	if name, ok := testbed.CandidateModelName(rec.Model); ok {
		resp.ModelName = name
	}
	for _, ni := range rec.Neighbors {
		resp.Neighbors = append(resp.Neighbors, neighborInfo{Index: ni, Name: snap.SampleAt(ni).Name})
	}
	writeJSON(w, http.StatusOK, resp)
}

type driftResponse struct {
	Drift     bool    `json:"drift"`
	Distance  float64 `json:"distance"`
	Threshold float64 `json:"threshold"`
}

func (s *server) handleDrift(w http.ResponseWriter, r *http.Request) {
	var req graphPayload
	if !decodePost(w, r, &req) {
		return
	}
	snap := s.adv.Serving()
	g := graphFor(w, &req, snap.InDim())
	if g == nil {
		return
	}
	dist := snap.NearestDistance(g)
	writeJSON(w, http.StatusOK, driftResponse{
		Drift:     dist > snap.DriftThreshold(),
		Distance:  dist,
		Threshold: snap.DriftThreshold(),
	})
}

type adaptRequest struct {
	graphPayload
	Sa     []float64 `json:"sa"`
	Se     []float64 `json:"se"`
	Epochs int       `json:"epochs"` // 0 means 2, the drift example's budget
}

type adaptResponse struct {
	RCSSize        int     `json:"rcs_size"`
	DriftThreshold float64 `json:"drift_threshold"`
}

func (s *server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	var req adaptRequest
	if !decodePost(w, r, &req) {
		return
	}
	snap := s.adv.Serving()
	g := graphFor(w, &req.graphPayload, snap.InDim())
	if g == nil {
		return
	}
	dim := len(snap.SampleAt(0).Sa)
	if len(req.Sa) != dim || len(req.Se) != dim {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("labels have %d/%d scores, advisor's models need %d", len(req.Sa), len(req.Se), dim))
		return
	}
	if req.Epochs < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("epochs %d is negative", req.Epochs))
		return
	}
	epochs := req.Epochs
	if epochs == 0 {
		epochs = 2
	}
	name := req.Name
	if name == "" {
		name = "adapted"
	}
	s.adv.OnlineAdapt(&core.Sample{Name: name, Graph: g, Sa: req.Sa, Se: req.Se}, epochs)
	//autoce:ignore snapshotonce -- deliberate re-load: OnlineAdapt republishes, and the response must describe the post-adapt snapshot
	adapted := s.adv.Serving()
	writeJSON(w, http.StatusOK, adaptResponse{
		RCSSize:        adapted.NumSamples(),
		DriftThreshold: adapted.DriftThreshold(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	tenants := s.fleet.snapshot()
	trained := 0
	for _, tn := range tenants {
		trained += len(tn.models)
	}
	resp := map[string]any{
		"ok":             true,
		"rcs_size":       s.adv.NumSamples(),
		"datasets":       len(tenants),
		"trained_models": trained,
		"model_cache":    s.cache.stats(),
	}
	if s.store != nil {
		resp["model_store"] = s.store.Stats()
	}
	if s.shard != nil {
		resp["shard"] = map[string]any{
			"index": s.shard.index, "count": s.shard.count,
			"replicas": s.shard.replicas,
		}
	}
	if s.peers != nil {
		resp["fleet"] = s.peers.healthTable()
	}
	writeJSON(w, http.StatusOK, resp)
}

// graphFor validates and converts a graph payload against the advisor's
// expected feature dimension — a mismatched graph would otherwise blow up
// deep inside the encoder's matrix kernels. It writes the 400 itself and
// returns nil on failure.
func graphFor(w http.ResponseWriter, p *graphPayload, inDim int) *feature.Graph {
	g, err := p.toGraph()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	if len(g.V[0]) != inDim {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("vertex features have dimension %d, advisor's encoder expects %d", len(g.V[0]), inDim))
		return nil
	}
	return g
}

// maxBodyBytes caps request bodies. The largest legitimate payload is a
// /datasets onboarding request: columnar JSON for up to the cell cap
// enforced in models.go (maxDatasetCells, 4M values), which at typical
// value widths runs to a few tens of megabytes; 64 MiB covers that with
// headroom while keeping one oversized POST from ballooning the decoder.
// Feature-graph payloads (/recommend, /adapt) stay far smaller.
const maxBodyBytes = 64 << 20

// decodePost enforces the POST method, the body size cap, and strict JSON
// decoding; it writes the error response itself and reports whether the
// handler should proceed.
func decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", int64(maxBodyBytes)))
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON payload: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// parseByteSize parses a human-readable byte count: a plain integer or
// one with a K/M/G suffix (optionally Ki/Mi/Gi, optionally trailing B;
// case-insensitive). All multipliers are binary (K = 1024). Empty means 0.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToLower(s)
	mult := int64(1)
	u = strings.TrimSuffix(u, "b")
	u = strings.TrimSuffix(u, "i")
	switch {
	case strings.HasSuffix(u, "k"):
		mult, u = 1<<10, strings.TrimSuffix(u, "k")
	case strings.HasSuffix(u, "m"):
		mult, u = 1<<20, strings.TrimSuffix(u, "m")
	case strings.HasSuffix(u, "g"):
		mult, u = 1<<30, strings.TrimSuffix(u, "g")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%q is not a byte size (want e.g. 64MiB, 512K, 1073741824)", s)
	}
	return n * mult, nil
}
