package main

// The tenant manifest: restart recovery for onboarded datasets. Each
// shard records every dataset payload it accepts (its own primaries and
// the replication fan-ins it backs) in one small CRC-enveloped file next
// to the model artifacts. A restarted shard replays the manifest through
// the normal onboarding path before serving, re-registering each
// tenant's stored artifacts as cold-loadable stubs — so a crashed shard
// rejoins the fleet serving estimates with zero client action.
//
// The envelope matches ce.Store's artifact format (magic, little-endian
// payload size, CRC-32C, payload) and the same crash-safety discipline:
// written to a tempfile in the same directory and renamed over the old
// manifest, so a crash mid-write leaves the previous generation intact.
// A corrupt manifest is quarantined to .corrupt and the shard starts
// empty — degraded (tenants must re-onboard) but never wrong.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/resilience"
)

// manifestMagic begins every manifest file: format name plus version, so
// a future layout change is detected by prefix, not by decode failure.
var manifestMagic = [8]byte{'C', 'E', 'T', 'E', 'N', 'v', '1', '\n'}

var manifestCRCTable = crc32.MakeTable(crc32.Castagnoli)

// maxManifestPayload bounds the decoded payload — a corrupted size field
// must not allocate unbounded memory.
const maxManifestPayload = 1 << 30

// tenantManifest is the on-disk record of onboarded dataset payloads,
// keyed by dataset name. Values are the canonical JSON of the
// datasetRequest, replayable through the onboarding path verbatim.
type tenantManifest struct {
	path string

	mu      sync.Mutex
	entries map[string][]byte
}

// newTenantManifest opens (or initializes) the manifest at path, loading
// any existing entries. A corrupt file is quarantined to path+".corrupt"
// and an empty manifest takes over; the error reports the quarantine but
// the manifest is usable either way.
func newTenantManifest(path string) (*tenantManifest, error) {
	m := &tenantManifest{path: path, entries: map[string][]byte{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("reading tenant manifest %s: %w", path, err)
	}
	entries, err := decodeManifest(raw)
	if err != nil {
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr == nil {
			return m, fmt.Errorf("tenant manifest %s is corrupt (%v); quarantined to %s, starting empty", path, err, quarantine)
		}
		return m, fmt.Errorf("tenant manifest %s is corrupt (%v); starting empty", path, err)
	}
	m.entries = entries
	return m, nil
}

// snapshot returns a copy of the current entries for replay.
func (m *tenantManifest) snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.entries))
	for k, v := range m.entries {
		out[k] = v
	}
	return out
}

// put records (or replaces) one dataset's onboarding payload and persists
// the manifest. On failure the in-memory entry is kept — the running
// process serves the tenant either way; only restart durability degrades,
// and the next successful put rewrites everything.
func (m *tenantManifest) put(name string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[name] = payload
	return m.saveLocked()
}

// saveLocked writes the envelope via tempfile+rename. Failpoint
// "serve.manifest.save" injects write faults here (the chaos harness
// verifies a failed manifest write degrades durability, not serving).
func (m *tenantManifest) saveLocked() error {
	if err := resilience.Failpoint("serve.manifest.save"); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m.entries); err != nil {
		return fmt.Errorf("encoding tenant manifest: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(manifestMagic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload.Bytes(), manifestCRCTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	dir := filepath.Dir(m.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "tmp-manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), m.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// decodeManifest verifies the envelope and decodes the entry map.
func decodeManifest(raw []byte) (map[string][]byte, error) {
	if len(raw) < len(manifestMagic)+12 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:len(manifestMagic)], manifestMagic[:]) {
		return nil, fmt.Errorf("bad magic %q", raw[:len(manifestMagic)])
	}
	body := raw[len(manifestMagic):]
	size := binary.LittleEndian.Uint64(body[:8])
	sum := binary.LittleEndian.Uint32(body[8:12])
	payload := body[12:]
	if size > maxManifestPayload {
		return nil, fmt.Errorf("implausible payload size %d", size)
	}
	if uint64(len(payload)) != size {
		return nil, fmt.Errorf("payload is %d bytes, header says %d", len(payload), size)
	}
	if got := crc32.Checksum(payload, manifestCRCTable); got != sum {
		return nil, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	var entries map[string][]byte
	if err := gob.NewDecoder(io.LimitReader(bytes.NewReader(payload), maxManifestPayload)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("decoding entries: %w", err)
	}
	if entries == nil {
		entries = map[string][]byte{}
	}
	return entries, nil
}
