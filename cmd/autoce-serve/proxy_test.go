package main

// Tests for fleet fault tolerance: read failover across the replica set,
// the non-mutating forward contract, JSON 502 when every option is
// exhausted, tenant-manifest round-trips, and restart recovery.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ce"
	"repro/internal/resilience"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.manifest")
	m, err := newTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.put("a", []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := m.put("b", []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := m.put("a", []byte(`{"gen":2}`)); err != nil { // replace
		t.Fatal(err)
	}

	m2, err := newTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.snapshot()
	if len(got) != 2 || string(got["a"]) != `{"gen":2}` || string(got["b"]) != `{"gen":1}` {
		t.Fatalf("reloaded entries = %q", got)
	}

	// A flipped payload byte is detected by the CRC, the file quarantined,
	// and an empty manifest takes over — which then persists normally.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m3, err := newTenantManifest(path)
	if err == nil {
		t.Fatal("corrupt manifest loaded without complaint")
	}
	if n := len(m3.snapshot()); n != 0 {
		t.Fatalf("corrupt manifest yielded %d entries, want 0", n)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
	if err := m3.put("c", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	m4, err := newTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m4.snapshot(); len(got) != 1 || got["c"] == nil {
		t.Fatalf("post-quarantine manifest = %q, want just c", got)
	}
}

func TestManifestSaveFailpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.manifest")
	m, err := newTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := resilience.SetFailpoint("serve.manifest.save", "error"); err != nil {
		t.Fatal(err)
	}
	defer resilience.ClearFailpoints()
	if err := m.put("a", []byte(`{}`)); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("put under failpoint: %v, want injected fault", err)
	}
	// The entry is kept in memory (serving continues; durability degrades)
	// and lands on disk with the next successful save.
	resilience.ClearFailpoints()
	if err := m.put("b", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	m2, err := newTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.snapshot(); len(got) != 2 {
		t.Fatalf("after failpoint round: %q, want a and b", got)
	}
}

// TestServeRestartRecovery is the crash-recovery contract: a server built
// over the same manifest and artifact store as a dead one resumes serving
// the dead one's tenants — bit-identical estimates — with zero client
// onboarding.
func TestServeRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "tenants.manifest")
	store1, err := ce.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := serveWithOpts(t, store1, serveOptions{ManifestPath: manifest})
	d := serveDataset(t, 1, 310)
	onboardAndTrain(t, ts1, d, "Postgres")
	q := rangeQueryBodies(d, 1)[0]
	var before estimateResponse
	if resp, data := postJSON(t, ts1, "/estimate", map[string]any{
		"dataset": d.Name, "query": q}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart estimate: %d %s", resp.StatusCode, data)
	} else if err := json.Unmarshal(data, &before); err != nil {
		t.Fatal(err)
	}
	ts1.Close() // the "crash"

	store2, err := ce.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := serveWithOpts(t, store2, serveOptions{ManifestPath: manifest})
	// No /datasets, no /train: the manifest replay plus stored artifacts
	// must be enough.
	resp, data := postJSON(t, ts2, "/estimate", map[string]any{"dataset": d.Name, "query": q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart estimate: %d %s", resp.StatusCode, data)
	}
	var after estimateResponse
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if after.Estimate != before.Estimate || after.Model != before.Model {
		t.Fatalf("post-restart estimate %v (model %s) != pre-restart %v (model %s)",
			after.Estimate, after.Model, before.Estimate, before.Model)
	}
}

// fleetFor builds n live shards sharing one artifact store, with peer
// URLs wired for fleet-proxy forwarding. wrap, when non-nil, intercepts
// each shard's handler (index, inner) — tests use it to observe inbound
// requests.
func fleetFor(t *testing.T, n, replicas int, wrap func(int, http.Handler) http.Handler) []*httptest.Server {
	t.Helper()
	adv, _ := testAdvisor(t, 10)
	storeDir := t.TempDir()
	servers := make([]*httptest.Server, n)
	peerList := ""
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		if i > 0 {
			peerList += ","
		}
		peerList += "http://" + servers[i].Listener.Addr().String()
	}
	for i, ts := range servers {
		sh, err := newSharder(i, n, replicas, peerList)
		if err != nil {
			t.Fatal(err)
		}
		store, err := ce.NewStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = newServerOpts(adv, store, serveOptions{Shard: sh})
		if wrap != nil {
			h = wrap(i, h)
		}
		ts.Config.Handler = h
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return servers
}

// keyWithReplicas finds a dataset name whose replica set is exactly the
// wanted shard sequence.
func keyWithReplicas(t *testing.T, sh *sharder, want ...int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("ds-%d", i)
		set := sh.replicasOf(k)
		match := len(set) == len(want)
		for j := range want {
			match = match && set[j] == want[j]
		}
		if match {
			return k
		}
	}
	t.Fatalf("no key with replica set %v", want)
	return ""
}

// TestServeForwardDoesNotMutateInbound is the regression for the proxy
// header bug: forwarding must clone the outbound request, never stamp
// X-Shard-Forwarded (or any routing header) onto the inbound one.
func TestServeForwardDoesNotMutateInbound(t *testing.T) {
	sawForwarded := make([]bool, 2)
	var mutated []string
	servers := fleetFor(t, 2, 1, func(i int, inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			had := r.Header.Get("X-Shard-Forwarded") != ""
			if had {
				sawForwarded[i] = true
			}
			inner.ServeHTTP(w, r)
			if !had && r.Header.Get("X-Shard-Forwarded") != "" {
				mutated = append(mutated, fmt.Sprintf("shard %d: %s %s", i, r.Method, r.URL.Path))
			}
		})
	})
	sh0, _ := newSharder(0, 2, 1, "")
	d := serveDataset(t, 1, 210)
	d.Name = ownedKey(t, sh0, 1) // primary: shard 1; front door: shard 0

	hdr := map[string]string{"X-Shard-Key": d.Name}
	if resp, data := postJSONHeaders(t, servers[0], "/datasets", datasetBody(d), hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded onboard: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSONHeaders(t, servers[0], "/train", map[string]any{
		"dataset": d.Name, "model": "Postgres", "queries": 30, "sample_rows": 80,
	}, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded train: %d %s", resp.StatusCode, data)
	}
	q := rangeQueryBodies(d, 1)[0]
	if resp, data := postJSONHeaders(t, servers[0], "/estimate", map[string]any{
		"dataset": d.Name, "query": q}, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded estimate: %d %s", resp.StatusCode, data)
	}
	if !sawForwarded[1] {
		t.Fatal("shard 1 never saw a forwarded request — forwarding path untested")
	}
	if len(mutated) > 0 {
		t.Fatalf("proxy mutated inbound requests: %v", mutated)
	}
}

// TestServeReadFailover kills a primary and checks reads fail over to the
// replica (serving the primary's trained model via lazy stub discovery
// over the shared store), then kills the replica too and checks the
// forwarder answers a JSON 502 rather than hanging or panicking.
func TestServeReadFailover(t *testing.T) {
	servers := fleetFor(t, 3, 2, nil)
	sh0, _ := newSharder(0, 3, 2, "")
	// A dataset whose replica set is {1, 2}: shard 0 always fronts,
	// never serves.
	key := keyWithReplicas(t, sh0, 1, 2)
	d := serveDataset(t, 1, 210)
	d.Name = key
	hdr := map[string]string{"X-Shard-Key": key}
	if resp, data := postJSONHeaders(t, servers[0], "/datasets", datasetBody(d), hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard via front: %d %s", resp.StatusCode, data)
	}
	if resp, data := postJSONHeaders(t, servers[0], "/train", map[string]any{
		"dataset": key, "model": "Postgres", "queries": 30, "sample_rows": 80,
	}, hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("train via front: %d %s", resp.StatusCode, data)
	}
	q := rangeQueryBodies(d, 1)[0]
	est := map[string]any{"dataset": key, "model": "Postgres", "query": q}

	servers[1].Close() // primary down
	resp, data := postJSONHeaders(t, servers[0], "/estimate", est, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate with primary down: %d %s — want replica failover", resp.StatusCode, data)
	}

	// /healthz on the front shard reports the fleet table.
	hresp, err := http.Get(servers[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Fleet struct {
			Peers []peerHealthInfo `json:"peers"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if len(health.Fleet.Peers) != 3 {
		t.Fatalf("fleet table lists %d peers, want 3", len(health.Fleet.Peers))
	}

	servers[2].Close() // replica down too: nothing can serve
	resp, data = postJSONHeaders(t, servers[0], "/estimate", est, hdr)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("estimate with whole replica set down: %d %s — want 502", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("502 content-type %q, want JSON", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("502 body %q is not the JSON error form (%v)", data, err)
	}
}

// TestServeReplicaReadWriteMatrix pins the role matrix on a live replica:
// reads serve, direct writes 421, replicate-marked writes serve.
func TestServeReplicaReadWriteMatrix(t *testing.T) {
	servers := fleetFor(t, 3, 2, nil)
	sh0, _ := newSharder(0, 3, 2, "")
	key := keyWithReplicas(t, sh0, 1, 2)
	d := serveDataset(t, 1, 210)
	d.Name = key
	hdr := map[string]string{"X-Shard-Key": key}
	if resp, data := postJSONHeaders(t, servers[0], "/datasets", datasetBody(d), hdr); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboard: %d %s", resp.StatusCode, data)
	}

	// Replica (shard 2) serves reads directly...
	if resp, data := postJSONHeaders(t, servers[2], "/recommend", map[string]any{
		"dataset": key, "wa": 0.5}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("read on replica: %d %s", resp.StatusCode, data)
	}
	// ...421s direct writes (it is not the primary; no routing header, so
	// no forwarding either)...
	if resp, _ := postJSONHeaders(t, servers[2], "/train", map[string]any{
		"dataset": key, "model": "Postgres"}, nil); resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("direct write on replica: %d, want 421", resp.StatusCode)
	}
	// ...and a non-member 421s reads without the routing header.
	if resp, _ := postJSONHeaders(t, servers[0], "/recommend", map[string]any{
		"dataset": key, "wa": 0.5}, nil); resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("direct read on non-member: %d, want 421", resp.StatusCode)
	}
}
