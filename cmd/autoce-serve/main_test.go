package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/feature"
	"repro/internal/gnn"
)

// testAdvisor trains a small advisor on a synthetic corpus with a clean
// learnable structure (single-table datasets favor model 0, multi-table
// model 1, model 2 always wins efficiency).
func testAdvisor(t testing.TB, n int) (*core.Advisor, []*core.Sample) {
	t.Helper()
	featCfg := feature.DefaultConfig()
	rng := rand.New(rand.NewSource(19))
	var samples []*core.Sample
	for i := 0; i < n; i++ {
		p := datagen.DefaultParams(rng.Int63())
		p.MinRows, p.MaxRows = 60, 120
		p.Tables = 1 + rng.Intn(3)
		d, err := datagen.Generate("t", p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := feature.Extract(d, featCfg)
		if err != nil {
			t.Fatal(err)
		}
		noise := func() float64 { return rng.Float64() * 0.05 }
		var sa []float64
		if d.NumTables() == 1 {
			sa = []float64{1 - noise(), 0.3 + noise(), 0.1 + noise()}
		} else {
			sa = []float64{0.3 + noise(), 1 - noise(), 0.1 + noise()}
		}
		se := []float64{0.2 + noise(), 0.1 + noise(), 1 - noise()}
		samples = append(samples, &core.Sample{Name: d.Name, Graph: g, Sa: sa, Se: se})
	}
	cfg := core.DefaultConfig(featCfg.VertexDim())
	cfg.GNN = gnn.Config{InDim: featCfg.VertexDim(), Hidden: 16, OutDim: 8, Layers: 2, Seed: 5}
	cfg.Epochs = 6
	cfg.Batch = 12
	adv, err := core.Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return adv, samples
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func graphBody(g *feature.Graph) map[string]any {
	return map[string]any{"name": g.Name, "v": g.V, "e": g.E}
}

func TestServeRecommend(t *testing.T) {
	adv, samples := testAdvisor(t, 16)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	body := graphBody(samples[0].Graph)
	body["wa"] = 0.9
	resp, data := postJSON(t, ts, "/recommend", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend returned %d: %s", resp.StatusCode, data)
	}
	var rec recommendResponse
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Model < 0 || rec.Model >= 3 {
		t.Fatalf("model %d out of range", rec.Model)
	}
	if len(rec.Scores) != 3 || len(rec.Neighbors) != 2 || rec.K != 2 {
		t.Fatalf("unexpected response %+v", rec)
	}
	for _, nb := range rec.Neighbors {
		if nb.Name == "" {
			t.Fatalf("neighbor %d has no name", nb.Index)
		}
	}

	// Explicit k is honored.
	body["k"] = 5
	_, data = postJSON(t, ts, "/recommend", body)
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Neighbors) != 5 || rec.K != 5 {
		t.Fatalf("k=5 returned %d neighbors", len(rec.Neighbors))
	}
}

func TestServeDrift(t *testing.T) {
	adv, samples := testAdvisor(t, 16)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	resp, data := postJSON(t, ts, "/drift", graphBody(samples[0].Graph))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/drift returned %d: %s", resp.StatusCode, data)
	}
	var dr driftResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Drift {
		t.Fatal("training graph flagged as drift")
	}
	if dr.Threshold <= 0 || dr.Distance < 0 {
		t.Fatalf("bad drift response %+v", dr)
	}

	far := samples[0].Graph.Clone()
	for i := range far.V {
		for f := range far.V[i] {
			far.V[i][f] = 50
		}
	}
	_, data = postJSON(t, ts, "/drift", graphBody(far))
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Drift {
		t.Fatal("far-away graph not flagged as drift")
	}
}

func TestServeAdapt(t *testing.T) {
	adv, samples := testAdvisor(t, 12)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	body := graphBody(samples[0].Graph)
	body["name"] = "newcomer"
	body["sa"] = []float64{0.2, 0.3, 0.9}
	body["se"] = []float64{0.5, 0.5, 0.5}
	body["epochs"] = 1
	resp, data := postJSON(t, ts, "/adapt", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/adapt returned %d: %s", resp.StatusCode, data)
	}
	var ar adaptResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.RCSSize != 13 {
		t.Fatalf("RCS size %d after adapt, want 13", ar.RCSSize)
	}

	// The adapted sample is now retrievable by name as its own nearest
	// neighbor.
	rb := graphBody(samples[0].Graph)
	rb["wa"] = 0.9
	rb["k"] = 1
	_, data = postJSON(t, ts, "/recommend", rb)
	var rec recommendResponse
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Neighbors) != 1 {
		t.Fatalf("expected 1 neighbor, got %v", rec.Neighbors)
	}
}

func TestServeHealthz(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz returned %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != true || h["rcs_size"] != float64(10) {
		t.Fatalf("bad health payload %v", h)
	}
}

func TestServeMalformedRequests(t *testing.T) {
	adv, samples := testAdvisor(t, 10)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	g := samples[0].Graph

	// Broken JSON.
	resp, err := http.Post(ts.URL+"/recommend", "application/json",
		bytes.NewReader([]byte(`{"v": [[1,2`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON returned %d", resp.StatusCode)
	}

	cases := []struct {
		path string
		body map[string]any
	}{
		{"/recommend", map[string]any{"wa": 0.9}},                               // no graph
		{"/recommend", map[string]any{"v": g.V, "e": g.E[:1], "wa": 0.9}},       // ragged adjacency
		{"/recommend", map[string]any{"v": [][]float64{{1}, {1, 2}}, "e": g.E}}, // ragged vertices
		{"/recommend", func() map[string]any { b := graphBody(g); b["wa"] = 1.5; return b }()},
		{"/recommend", func() map[string]any { b := graphBody(g); b["k"] = -1; return b }()},
		{"/recommend", func() map[string]any { b := graphBody(g); b["bogus"] = 1; return b }()}, // unknown field
		{"/drift", map[string]any{"v": [][]float64{}, "e": [][]float64{}}},
		// Wrong feature dimension: well-shaped but unembeddable — must be
		// a 400, not a panic in the encoder kernels.
		{"/recommend", map[string]any{"v": [][]float64{{1, 2, 3}}, "e": [][]float64{{0}}, "wa": 0.9}},
		{"/drift", map[string]any{"v": [][]float64{{1, 2, 3}}, "e": [][]float64{{0}}}},
		{"/adapt", func() map[string]any { // wrong label dimension
			b := graphBody(g)
			b["sa"] = []float64{1}
			b["se"] = []float64{1}
			return b
		}()},
		{"/adapt", func() map[string]any {
			b := graphBody(g)
			b["sa"] = []float64{1, 1, 1}
			b["se"] = []float64{1, 1, 1}
			b["epochs"] = -3
			return b
		}()},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with %v returned %d (%s), want 400", tc.path, tc.body, resp.StatusCode, data)
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s error body %q lacks an error message", tc.path, data)
		}
	}

	// Oversized body: rejected with 413 before the decoder balloons.
	huge := bytes.Repeat([]byte(" "), maxBodyBytes+1)
	copy(huge, `{"v": [[`)
	resp, err = http.Post(ts.URL+"/recommend", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d, want 413", resp.StatusCode)
	}

	// Wrong methods.
	for _, path := range []string{"/recommend", "/drift", "/adapt"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s returned %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err = http.Post(ts.URL+"/healthz", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz returned %d, want 405", resp.StatusCode)
	}
}

// TestServeConcurrentTraffic mixes reads and an /adapt mutation; with
// -race this exercises the snapshot swap under real HTTP concurrency.
func TestServeConcurrentTraffic(t *testing.T) {
	adv, samples := testAdvisor(t, 12)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := samples[w].Graph
			for i := 0; i < 25; i++ {
				body := graphBody(g)
				body["wa"] = 0.9
				payload, err := json.Marshal(body)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/recommend", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/recommend returned %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	body := graphBody(samples[5].Graph)
	body["name"] = "mid-flight"
	body["sa"] = []float64{0.1, 0.9, 0.2}
	body["se"] = []float64{0.4, 0.4, 0.4}
	body["epochs"] = 1
	resp, data := postJSON(t, ts, "/adapt", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/adapt returned %d: %s", resp.StatusCode, data)
	}
	wg.Wait()
}
