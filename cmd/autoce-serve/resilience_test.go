package main

// Endpoint-level tests of the resilience layer: deadlines, admission
// control, panic isolation with per-model quarantine, the recovery
// middleware, and the readiness probe. Fault injection goes through
// internal/resilience failpoints armed per test.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/resilience"
)

// mustGraph extracts d's feature graph with the default config (the same
// dimensioning testAdvisor trains with).
func mustGraph(t *testing.T, d *dataset.Dataset) *feature.Graph {
	t.Helper()
	g, err := feature.Extract(d, feature.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// trainModelOn trains one named model for a dataset already onboarded on
// ts, failing the test on any non-200.
func trainModelOn(t *testing.T, ts *httptest.Server, ds, model string) {
	t.Helper()
	resp, data := postJSON(t, ts, "/train", map[string]any{"dataset": ds, "model": model})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("training %s on %s returned %d: %s", model, ds, resp.StatusCode, data)
	}
}

// onboard onboards d on ts, failing the test on any non-200.
func onboard(t *testing.T, ts *httptest.Server, d *dataset.Dataset) {
	t.Helper()
	resp, data := postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("onboarding %s returned %d: %s", d.Name, resp.StatusCode, data)
	}
}

// estimateStatus posts a single-query estimate and returns the status.
func estimateStatus(t *testing.T, ts *httptest.Server, ds, model string) (int, []byte) {
	t.Helper()
	resp, data := postJSON(t, ts, "/estimate", map[string]any{
		"dataset": ds, "model": model,
		"query": map[string]any{"tables": []int{0}},
	})
	return resp.StatusCode, data
}

func TestServeReadyz(t *testing.T) {
	adv, _ := testAdvisor(t, 8)
	srv := newServerOpts(adv, nil, serveOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz returned %d before shutdown", resp.StatusCode)
	}

	// Shutdown flips readiness (main does this on SIGTERM); liveness
	// stays up so in-flight drains are still observable.
	srv.ready.Store(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz returned %d while draining, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz returned %d while draining, want 200 (liveness)", resp.StatusCode)
	}
}

func TestServeRecoveryMiddlewareSurvivesPanic(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()

	if err := resilience.SetFailpoint("serve.onboard", "panic"); err != nil {
		t.Fatal(err)
	}
	d := serveDataset(t, 1, 41)
	resp, _ := postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking onboard returned %d, want 500", resp.StatusCode)
	}
	resilience.ClearFailpoint("serve.onboard")

	// The server survived: the same onboarding now succeeds.
	onboard(t, ts, d)
}

func TestServeTrainQueueFull(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	srv := newServerOpts(adv, nil, serveOptions{
		TrainDeadline: 10 * time.Second,
		Admission:     resilience.AdmissionConfig{TrainQueue: 1},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	onboard(t, ts, serveDataset(t, 1, 42))

	// Hold the single queue slot with a training that sleeps in Fit.
	if err := resilience.SetFailpoint("ce.pglike.fit", "sleep(600ms)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := postJSON(t, ts, "/train", map[string]any{"dataset": "served", "model": "Postgres"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slot-holding train returned %d: %s", resp.StatusCode, data)
		}
	}()
	// Wait until the first train occupies the queue (sleep failpoint hit
	// means it is inside Fit, past AdmitTrain).
	deadline := time.Now().Add(5 * time.Second)
	for resilience.FailpointHits("ce.pglike.fit") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first train never reached Fit")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, data := postJSON(t, ts, "/train", map[string]any{"dataset": "served", "model": "Postgres"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("train with full queue returned %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}

	// The cheap class is untouched by train-queue saturation.
	resp, data = postJSON(t, ts, "/recommend", map[string]any{"dataset": "served", "wa": 0.9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommend during train saturation returned %d: %s", resp.StatusCode, data)
	}
	wg.Wait()
}

func TestServeEstimateDeadline(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	srv := newServerOpts(adv, nil, serveOptions{EstimateDeadline: 60 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	onboard(t, ts, serveDataset(t, 1, 43))
	trainModelOn(t, ts, "served", "Postgres")

	// Inference outlives the deadline; the chunked batch path notices at
	// its next checkpoint and answers 503 instead of wedging.
	if err := resilience.SetFailpoint("ce.pglike.estimate", "sleep(250ms)"); err != nil {
		t.Fatal(err)
	}
	status, data := estimateStatus(t, ts, "served", "Postgres")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline estimate returned %d: %s", status, data)
	}
	resilience.ClearFailpoint("ce.pglike.estimate")

	status, data = estimateStatus(t, ts, "served", "Postgres")
	if status != http.StatusOK {
		t.Fatalf("estimate after clearing failpoint returned %d: %s", status, data)
	}
}

func TestServeTrainDeadlineAbandonsCooperatively(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	srv := newServerOpts(adv, nil, serveOptions{TrainDeadline: 80 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	onboard(t, ts, serveDataset(t, 1, 44))

	if err := resilience.SetFailpoint("ce.pglike.fit", "sleep(400ms)"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	resp, data := postJSON(t, ts, "/train", map[string]any{"dataset": "served", "model": "Postgres"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline train returned %d: %s", resp.StatusCode, data)
	}
	// The handler answered at the deadline, not after the full sleep.
	if elapsed := time.Since(t0); elapsed > 350*time.Millisecond {
		t.Fatalf("train deadline response took %v", elapsed)
	}
	resilience.ClearFailpoint("ce.pglike.fit")

	// The abandoned trainer held the single-flight slot until it wound
	// down; once it has, training proceeds normally.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data = postJSON(t, ts, "/train", map[string]any{"dataset": "served", "model": "Postgres"})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("train never recovered after abandoned run: %d %s", resp.StatusCode, data)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeQuarantineIsolatesFaultingModel(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	onboard(t, ts, serveDataset(t, 1, 45))
	trainModelOn(t, ts, "served", "Postgres")
	trainModelOn(t, ts, "served", "LW-XGB")

	// Postgres inference now panics: the first estimate trips the fence
	// (503), quarantining that model only.
	if err := resilience.SetFailpoint("ce.pglike.estimate", "panic"); err != nil {
		t.Fatal(err)
	}
	status, data := estimateStatus(t, ts, "served", "Postgres")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("panicking estimate returned %d: %s", status, data)
	}
	// Quarantine persists even with the fault gone — the model is marked,
	// not re-probed.
	resilience.ClearFailpoint("ce.pglike.estimate")
	status, data = estimateStatus(t, ts, "served", "Postgres")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("quarantined estimate returned %d: %s", status, data)
	}
	// The healthy tenant keeps answering throughout.
	status, data = estimateStatus(t, ts, "served", "LW-XGB")
	if status != http.StatusOK {
		t.Fatalf("healthy model returned %d during quarantine: %s", status, data)
	}

	// Retraining publishes a fresh servedModel, clearing the quarantine.
	trainModelOn(t, ts, "served", "Postgres")
	status, data = estimateStatus(t, ts, "served", "Postgres")
	if status != http.StatusOK {
		t.Fatalf("retrained model returned %d: %s", status, data)
	}
}

func TestServeQuarantineWithParallelBatch(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	onboard(t, ts, serveDataset(t, 1, 46))
	trainModelOn(t, ts, "served", "Postgres")

	// A multi-query batch drives pglike's parallel fan-out; the worker
	// panic must be funneled back to the fence, not crash the process.
	if err := resilience.SetFailpoint("ce.pglike.estimate", "panic"); err != nil {
		t.Fatal(err)
	}
	q := map[string]any{"tables": []int{0}}
	resp, data := postJSON(t, ts, "/estimate", map[string]any{
		"dataset": "served", "model": "Postgres",
		"queries": []any{q, q, q, q, q, q, q, q},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panicking batch returned %d: %s", resp.StatusCode, data)
	}
	// Still alive.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/healthz returned %d after batch panic", resp2.StatusCode)
	}
}

func TestServeHeavyClassSheds(t *testing.T) {
	defer resilience.ClearFailpoints()
	adv, _ := testAdvisor(t, 8)
	srv := newServerOpts(adv, nil, serveOptions{
		Admission: resilience.AdmissionConfig{HeavySlots: 1},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if err := resilience.SetFailpoint("serve.onboard", "sleep(400ms)"); err != nil {
		t.Fatal(err)
	}
	d := serveDataset(t, 1, 47)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts, "/datasets", datasetBody(d))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for resilience.FailpointHits("serve.onboard") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first onboard never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second heavy request sheds immediately (no queue) with Retry-After.
	resp, data := postJSON(t, ts, "/datasets", datasetBody(d))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("onboard with saturated heavy class returned %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After header")
	}

	// Cheap snapshot reads are a disjoint class: still served.
	resp, data = postJSON(t, ts, "/drift", graphBody(mustGraph(t, d)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/drift during heavy saturation returned %d: %s", resp.StatusCode, data)
	}
	wg.Wait()
}

func TestServeModelsStillGETOnly(t *testing.T) {
	// The middleware stack must not change method handling.
	adv, _ := testAdvisor(t, 8)
	ts := httptest.NewServer(newServer(adv, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/models returned %d", resp.StatusCode)
	}
	var mr modelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Models) == 0 {
		t.Fatal("registry empty through middleware stack")
	}
}
