package main

// Tail-latency benchmarks for the serving hot path. Beyond the usual
// ns/op, these report p50/p99 request latency (b.ReportMetric with
// "p50-ns"/"p99-ns" units) measured per request across all parallel
// workers via internal/latency histograms, and emit the full histogram
// as a "HIST <name> <sparse>" line — cmd/benchcheck parses both and
// gates the p99 against ci/bench_baseline.json, so a tail regression
// fails CI even when the mean stays flat.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/latency"
)

// benchServe builds a served tenant and returns encoded /estimate bodies
// cycling over nq distinct range queries, batched batch at a time.
func benchServe(b *testing.B, nq, batch int) (*httptest.Server, [][]byte) {
	b.Helper()
	_, ts := serveWithOpts(b, nil, serveOptions{})
	d := serveDataset(b, 1, 301)
	d.Name = "bench"
	onboardAndTrain(b, ts, d, "Postgres")
	queries := rangeQueryBodies(d, nq)
	var bodies [][]byte
	for i := 0; i < nq; i++ {
		var payload map[string]any
		if batch <= 1 {
			payload = map[string]any{"dataset": "bench", "query": queries[i]}
		} else {
			qs := make([]map[string]any, batch)
			for j := range qs {
				qs[j] = queries[(i+j)%nq]
			}
			payload = map[string]any{"dataset": "bench", "queries": qs}
		}
		enc, err := json.Marshal(payload)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, enc)
	}
	return ts, bodies
}

// benchRequests drives b.N POSTs through parallel workers, each timing
// its own requests into a private histogram; the merged histogram feeds
// the reported quantiles.
func benchRequests(b *testing.B, ts *httptest.Server, bodies [][]byte) {
	var mu sync.Mutex
	var merged latency.Histogram
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var h latency.Histogram
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
			h.Record(time.Since(t0))
			if resp.StatusCode != http.StatusOK {
				b.Errorf("/estimate returned %d", resp.StatusCode)
				return
			}
		}
		mu.Lock()
		merged.Merge(&h)
		mu.Unlock()
	})
	b.StopTimer()
	if merged.Count() > 0 {
		qs := merged.Quantiles(0.50, 0.99)
		b.ReportMetric(float64(qs[0]), "p50-ns")
		b.ReportMetric(float64(qs[1]), "p99-ns")
		fmt.Printf("HIST %s %s\n", b.Name(), merged.Sparse())
	}
}

// BenchmarkServeEstimate is the single-query hot path: HTTP decode,
// snapshot resolution, coalescing, admission, one-model inference.
func BenchmarkServeEstimate(b *testing.B) {
	ts, bodies := benchServe(b, 8, 1)
	benchRequests(b, ts, bodies)
}

// BenchmarkServeEstimateBatch64 is the batched ride: one request, 64
// queries through EstimateBatch's chunked path.
func BenchmarkServeEstimateBatch64(b *testing.B) {
	ts, bodies := benchServe(b, 8, 64)
	benchRequests(b, ts, bodies)
}
