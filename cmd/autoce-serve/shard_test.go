package main

// Tests for shard-by-dataset routing: rendezvous-hash properties, the
// in-handler 421 guard, and thin-proxy forwarding between two live
// shards.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ce"
)

// postJSONHeaders is postJSON with extra request headers.
func postJSONHeaders(t *testing.T, ts *httptest.Server, path string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestSharderRendezvousProperties(t *testing.T) {
	mk := func(index, count int) *sharder {
		sh, err := newSharder(index, count, 2, "")
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("dataset-%d", i)
	}

	// Agreement: every member of a 4-shard fleet computes the same owner.
	owners := map[string]int{}
	fleet4 := []*sharder{mk(0, 4), mk(1, 4), mk(2, 4), mk(3, 4)}
	for _, k := range keys {
		owners[k] = fleet4[0].shardOf(k)
		for _, sh := range fleet4 {
			if sh.shardOf(k) != owners[k] {
				t.Fatalf("shard %d disagrees on owner of %q", sh.index, k)
			}
			if sh.owns(k) != (owners[k] == sh.index) {
				t.Fatalf("owns(%q) inconsistent on shard %d", k, sh.index)
			}
		}
	}
	// Balance: every shard owns a meaningful slice of 200 keys (an even
	// split is 50; demand at least 20% of that to catch a broken hash
	// without flaking on variance).
	counts := make([]int, 4)
	for _, o := range owners {
		counts[o]++
	}
	for i, c := range counts {
		if c < 10 {
			t.Fatalf("shard %d owns only %d/200 keys: %v", i, c, counts)
		}
	}
	// Replica sets: R distinct members, primary first, agreed fleet-wide;
	// backs() is membership.
	for _, k := range keys {
		set := fleet4[0].replicasOf(k)
		if len(set) != 2 || set[0] != owners[k] || set[1] == set[0] {
			t.Fatalf("replicasOf(%q) = %v, want 2 distinct shards led by owner %d", k, set, owners[k])
		}
		for _, sh := range fleet4 {
			got := sh.replicasOf(k)
			if got[0] != set[0] || got[1] != set[1] {
				t.Fatalf("shard %d disagrees on replica set of %q: %v vs %v", sh.index, k, got, set)
			}
			inSet := sh.index == set[0] || sh.index == set[1]
			if sh.backs(k) != inSet {
				t.Fatalf("backs(%q) = %v on shard %d, replica set %v", k, sh.backs(k), sh.index, set)
			}
		}
	}

	// Minimal disruption: growing 4 -> 5 shards only moves keys onto the
	// new shard; no key moves between surviving shards.
	grown := mk(0, 5)
	moved := 0
	for _, k := range keys {
		if o := grown.shardOf(k); o != owners[k] {
			if o != 4 {
				t.Fatalf("key %q moved from shard %d to surviving shard %d on grow", k, owners[k], o)
			}
			moved++
		}
	}
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("grow moved %d/200 keys; want a small non-zero share", moved)
	}
}

func TestSharderConfigValidation(t *testing.T) {
	if sh, err := newSharder(0, 0, 0, ""); err != nil || sh != nil {
		t.Fatalf("unsharded config: (%v, %v)", sh, err)
	}
	// A 1-shard fleet runs unsharded (logged, not an error) — but pairing
	// it with peer URLs is a misconfiguration, same as count 0.
	if sh, err := newSharder(0, 1, 0, ""); err != nil || sh != nil {
		t.Fatalf("single-shard config: (%v, %v), want unsharded nil", sh, err)
	}
	if _, err := newSharder(0, 1, 0, "http://a:1"); err == nil {
		t.Fatal("peers with -shard-count 1 accepted")
	}
	if _, err := newSharder(2, 2, 0, ""); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := newSharder(0, 2, 0, "http://a:1"); err == nil {
		t.Fatal("peer-count mismatch accepted")
	}
	if _, err := newSharder(0, 2, 0, "http://a:1,not a url"); err == nil {
		t.Fatal("malformed peer URL accepted")
	}
	if _, err := newSharder(0, 0, 0, "http://a:1"); err == nil {
		t.Fatal("peers without shard-count accepted")
	}
	// Replica-set size clamps to the fleet.
	if sh, err := newSharder(0, 2, 5, ""); err != nil || sh.replicas != 2 {
		t.Fatalf("replicas clamp: (%+v, %v)", sh, err)
	}
}

// ownedKey finds a dataset name owned by the wanted shard.
func ownedKey(t *testing.T, sh *sharder, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("ds-%d", i)
		if sh.shardOf(k) == want {
			return k
		}
	}
	t.Fatal("no key found for shard")
	return ""
}

// TestServeShardMisdirected421 pins the ownership guard: a shard answers
// 421 (naming the owner) for datasets it does not own, on every
// dataset-addressed endpoint, and serves its own normally.
func TestServeShardMisdirected421(t *testing.T) {
	// replicas=1: the replica set is just the primary, so reads 421 off
	// the owner too (replica-set read serving is covered in proxy_test.go).
	sh, err := newSharder(0, 2, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := serveWithOpts(t, nil, serveOptions{Shard: sh})
	foreign := ownedKey(t, sh, 1)
	mine := ownedKey(t, sh, 0)

	for _, req := range []struct {
		path string
		body map[string]any
	}{
		{"/datasets", map[string]any{"name": foreign, "tables": []map[string]any{}}},
		{"/train", map[string]any{"dataset": foreign}},
		{"/estimate", map[string]any{"dataset": foreign, "query": map[string]any{"tables": []int{0}}}},
		{"/recommend", map[string]any{"dataset": foreign, "wa": 0.5}},
	} {
		resp, data := postJSON(t, ts, req.path, req.body)
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s for foreign dataset returned %d: %s", req.path, resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Shard-Want"); got != "1" {
			t.Fatalf("%s X-Shard-Want = %q, want 1", req.path, got)
		}
	}

	// An owned dataset flows through to normal handling (404: not yet
	// onboarded — crucially not 421).
	resp, _ := postJSON(t, ts, "/estimate", map[string]any{
		"dataset": mine, "query": map[string]any{"tables": []int{0}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("owned dataset returned %d, want 404", resp.StatusCode)
	}
}

// TestServeShardProxyForwarding runs two live shards with peer URLs over
// a shared artifact store and verifies a request carrying X-Shard-Key
// lands somewhere that can serve it no matter which shard fronts it —
// writes on the primary, reads on any replica-set member (via the
// replication fan-out and lazy stub discovery) — and that a forwarded
// request is never forwarded again (loop guard).
func TestServeShardProxyForwarding(t *testing.T) {
	adv, _ := testAdvisor(t, 10)
	// Listeners first: the peer URLs must exist before the sharders do.
	ts0 := httptest.NewUnstartedServer(nil)
	ts1 := httptest.NewUnstartedServer(nil)
	peers := fmt.Sprintf("http://%s,http://%s", ts0.Listener.Addr(), ts1.Listener.Addr())
	storeDir := t.TempDir() // shared: replicas serve lazy stubs from it
	for i, ts := range []*httptest.Server{ts0, ts1} {
		sh, err := newSharder(i, 2, 2, peers)
		if err != nil {
			t.Fatal(err)
		}
		store, err := ce.NewStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		ts.Config.Handler = newServerOpts(adv, store, serveOptions{Shard: sh})
		ts.Start()
		defer ts.Close()
	}
	sh0, _ := newSharder(0, 2, 2, peers)

	// A dataset whose primary is shard 1, onboarded through shard 0's
	// front door (a write: forwarded to the primary, which fans it back
	// out to shard 0 as a replica).
	d := serveDataset(t, 1, 210)
	d.Name = ownedKey(t, sh0, 1)
	client := func(ts *httptest.Server, path string, body map[string]any, hdr map[string]string) (*http.Response, []byte) {
		t.Helper()
		resp, data := postJSONHeaders(t, ts, path, body, hdr)
		return resp, data
	}
	resp, data := client(ts0, "/datasets", datasetBody(d), map[string]string{"X-Shard-Key": d.Name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded onboard returned %d: %s", resp.StatusCode, data)
	}
	// Training routes to the primary through shard 0's front door too.
	if resp, data := client(ts0, "/train", map[string]any{
		"dataset": d.Name, "model": "Postgres", "queries": 30, "sample_rows": 80,
	}, map[string]string{"X-Shard-Key": d.Name}); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded train returned %d: %s", resp.StatusCode, data)
	}
	// Estimates serve through either front door: shard 1 has the model
	// live, shard 0 backs the dataset and lazily registers a stub for the
	// primary's artifact from the shared store.
	q := rangeQueryBodies(d, 1)[0]
	for _, front := range []*httptest.Server{ts0, ts1} {
		resp, data := client(front, "/estimate", map[string]any{
			"dataset": d.Name, "model": "Postgres", "query": q},
			map[string]string{"X-Shard-Key": d.Name})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate via front returned %d: %s", resp.StatusCode, data)
		}
	}
	// Writes outside the primary answer 421 naming it: /train on shard 0
	// without the routing header cannot be served there.
	resp, _ = client(ts0, "/train", map[string]any{"dataset": d.Name, "model": "Postgres"}, nil)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("headerless misdirected train returned %d, want 421", resp.StatusCode)
	}
	if peer := resp.Header.Get("X-Shard-Peer"); peer == "" {
		t.Fatal("421 carries no X-Shard-Peer hint")
	}
	// Loop guard: a request already marked forwarded must not bounce
	// between shards; it dead-ends in a 421.
	resp, _ = client(ts0, "/train", map[string]any{"dataset": d.Name, "model": "Postgres"},
		map[string]string{"X-Shard-Key": d.Name, "X-Shard-Forwarded": "1"})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("forwarded-loop request returned %d, want 421", resp.StatusCode)
	}
}
