package main

// The fleet proxy: forwarding with fault tolerance. Where shard.go
// decides *who* can answer a request, this file gets it there and back —
// per-peer circuit breakers so a crashed shard costs one failure window
// instead of a timeout per request, a background health prober feeding
// failover, bounded retries with decorrelated-jitter backoff for
// idempotent reads, and optional hedged /estimate forwards fired after a
// latency-histogram-informed delay with first-response-wins cancellation.
//
// Reads (/estimate, /recommend, /drift, GETs) retry across the dataset's
// replica set, healthiest peer first. Writes (/datasets, /train, /adapt)
// are forwarded to the primary exactly once and never replayed — a
// replayed /train would double-spend the training budget, a replayed
// /datasets could resurrect a replaced dataset. Forwards that exhaust
// every option answer a JSON 502 naming the last upstream failure.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/latency"
	"repro/internal/resilience"
)

// headerReplicate marks a primary's onboarding fan-out to the rest of the
// dataset's replica set; replica-set members accept it in place of
// primary ownership (shard.go) and never forward or re-replicate it.
const headerReplicate = "X-Shard-Replicate"

// peerSet is this shard's view of the rest of the fleet: one breaker per
// peer, one shared prober, the retry/hedge policy, and the latency
// history the hedge delay is derived from.
type peerSet struct {
	sh     *sharder
	client *http.Client
	// readTimeout bounds each forwarded read attempt; write forwards use
	// the target endpoint's own deadline (a /train legitimately runs
	// minutes).
	readTimeout  time.Duration
	trainTimeout time.Duration
	writeTimeout time.Duration
	retry        resilience.Retry
	breakers     []*resilience.Breaker
	prober       *resilience.Prober
	hedge        bool

	// hist records successful forward latencies; the hedge fires at its
	// p90 (histMu because Histogram is not concurrency-safe).
	histMu sync.Mutex
	hist   latency.Histogram
}

// newPeerSet wires the fault-tolerance state for a sharder running in
// proxy mode (sh.peers non-nil). The prober is constructed but not
// started; main runs it (tests drive Step directly).
func newPeerSet(sh *sharder, opts serveOptions) *peerSet {
	ps := &peerSet{
		sh:           sh,
		client:       &http.Client{},
		readTimeout:  opts.PeerTimeout,
		trainTimeout: opts.TrainDeadline,
		writeTimeout: opts.OnboardDeadline,
		retry:        resilience.Retry{Attempts: 3, Base: 25 * time.Millisecond, Cap: time.Second},
		hedge:        !opts.NoHedge,
	}
	for i := 0; i < sh.count; i++ {
		ps.breakers = append(ps.breakers, resilience.NewBreaker(resilience.BreakerConfig{}))
	}
	ps.prober = resilience.NewProber(resilience.ProberConfig{
		Peers:    sh.count,
		Self:     sh.index,
		Interval: opts.ProbeInterval,
		Timeout:  opts.ProbeTimeout,
		Probe:    ps.probe,
	})
	return ps
}

// probe is the prober's check: GET the peer's /healthz. It deliberately
// bypasses the breaker — the prober's whole job is to notice a down peer
// recovering while the breaker is refusing it traffic.
func (ps *peerSet) probe(ctx context.Context, peer int) error {
	u := ps.sh.peers[peer].ResolveReference(&url.URL{Path: "/healthz"})
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return err
	}
	resp, err := ps.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// peerResponse is a fully-drained upstream response — body in memory, so
// hedging can cancel the loser's context without tearing the winner's
// body read.
type peerResponse struct {
	status int
	header http.Header
	body   []byte
}

func (pr *peerResponse) write(w http.ResponseWriter) {
	for k, vs := range pr.header {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Content-Length":
			continue // hop-by-hop / recomputed
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(pr.status)
	w.Write(pr.body)
}

// do performs one forward attempt to peer, recording the outcome in its
// breaker and (on success) the latency histogram. The inbound request is
// never touched: the outbound request is built fresh with a cloned header
// set, per the ReverseProxy contract this layer replaces — mutating r
// would corrupt the caller's view and, worse, a hedged sibling's.
func (ps *peerSet) do(ctx context.Context, peer int, r *http.Request, body []byte, extra http.Header) (*peerResponse, error) {
	b := ps.breakers[peer]
	if !b.Allow() {
		// Fail fast without recording: refusal is the breaker's own doing,
		// not new evidence about the peer.
		return nil, fmt.Errorf("shard %d: circuit breaker open", peer)
	}
	// Failpoint "serve.peer.forward": error mode simulates the peer down
	// (connection refused), sleep mode a slow peer. Recorded as a breaker
	// failure like the real thing, so chaos runs exercise the trip/recover
	// cycle.
	if err := resilience.Failpoint("serve.peer.forward"); err != nil {
		b.Record(err)
		return nil, err
	}
	u := ps.sh.peers[peer].ResolveReference(&url.URL{Path: r.URL.Path, RawQuery: r.URL.RawQuery})
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set("X-Shard-Forwarded", strconv.Itoa(ps.sh.index))
	for k, vs := range extra {
		req.Header[k] = vs
	}
	t0 := time.Now()
	resp, err := ps.client.Do(req)
	if err != nil {
		b.Record(err)
		return nil, err
	}
	defer resp.Body.Close()
	out := &peerResponse{status: resp.StatusCode, header: resp.Header.Clone()}
	out.body, err = io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		b.Record(err)
		return nil, err
	}
	// Any complete HTTP response — even a 4xx/5xx — is evidence the peer is
	// alive; the breaker tracks reachability, not application outcomes.
	b.Record(nil)
	ps.observe(time.Since(t0))
	return out, nil
}

func (ps *peerSet) observe(d time.Duration) {
	ps.histMu.Lock()
	ps.hist.Record(d)
	ps.histMu.Unlock()
}

// hedgeDelay is how long the first read attempt runs alone before a
// hedge fires at the next replica: the observed p90 (a slower-than-p90
// forward is probably stuck), clamped to [1ms, 250ms], with a 25ms
// default until enough history accumulates.
func (ps *peerSet) hedgeDelay() time.Duration {
	ps.histMu.Lock()
	defer ps.histMu.Unlock()
	if ps.hist.Count() < 20 {
		return 25 * time.Millisecond
	}
	d := time.Duration(ps.hist.Quantile(0.90))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// orderTargets sorts key's candidate shards healthiest-first: peers whose
// breaker is not open and whom the prober considers up, then the rest
// (fail-open — with every peer looking down, trying them beats a
// guaranteed 502), self excluded.
func (ps *peerSet) orderTargets(cands []int) []int {
	health := ps.prober.Health()
	alive := make([]int, 0, len(cands))
	var down []int
	for _, p := range cands {
		if p == ps.sh.index {
			continue
		}
		if ps.breakers[p].State() != resilience.BreakerOpen && health.Up(p) {
			alive = append(alive, p)
		} else {
			down = append(down, p)
		}
	}
	return append(alive, down...)
}

// forward proxies r — whose dataset key this shard cannot answer — to the
// fleet. Reads fail over across the replica set with retries (and hedge
// on /estimate); writes go to the primary exactly once.
func (ps *peerSet) forward(w http.ResponseWriter, r *http.Request, key string, read bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request body: "+err.Error())
		return
	}
	if !read {
		timeout := ps.writeTimeout
		if r.URL.Path == "/train" {
			timeout = ps.trainTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		pr, err := ps.do(ctx, ps.sh.shardOf(key), r, body, nil)
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("forwarding to primary of %q: %v", key, err))
			return
		}
		pr.write(w)
		return
	}
	ps.forwardRead(w, r, key, body)
}

// forwardRead fails a read over across key's replica set, healthiest
// peer first, with retries and the /estimate hedge. It serves two
// callers: forward (fronting a request this shard cannot answer) and
// read repair (models.go) — a replica-set member that missed the
// onboarding fan-out re-forwards the read instead of answering 404.
func (ps *peerSet) forwardRead(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	targets := ps.orderTargets(ps.sh.replicasOf(key))
	if len(targets) == 0 {
		// Degenerate topology (replica set ⊆ self); the caller's routing
		// should have served locally.
		ps.sh.misdirect(w, key)
		return
	}
	var pr *peerResponse
	attemptOne := func(attempt int) error {
		peer := targets[attempt%len(targets)]
		ctx, cancel := context.WithTimeout(r.Context(), ps.readTimeout)
		defer cancel()
		var aerr error
		if ps.hedge && r.URL.Path == "/estimate" && len(targets) > 1 {
			next := targets[(attempt+1)%len(targets)]
			pr, aerr = ps.doHedged(ctx, peer, next, r, body)
		} else {
			pr, aerr = ps.do(ctx, peer, r, body, nil)
		}
		return aerr
	}
	if err := ps.retry.Do(r.Context(), attemptOne); err != nil {
		writeError(w, http.StatusBadGateway, fmt.Sprintf("forwarding %q: all replicas failed: %v", key, err))
		return
	}
	pr.write(w)
}

// doHedged races a forward to peer against a hedge to next fired after
// hedgeDelay: whichever completes first wins and the other's context is
// cancelled. The hedge only helps when the first peer is slow rather
// than down — a refused connection fails fast and returns before the
// hedge timer does.
func (ps *peerSet) doHedged(ctx context.Context, peer, next int, r *http.Request, body []byte) (*peerResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		pr  *peerResponse
		err error
	}
	ch := make(chan result, 2)
	launch := func(p int) {
		go func() {
			pr, err := ps.do(hctx, p, r, body, nil)
			ch <- result{pr, err}
		}()
	}
	launch(peer)
	inflight := 1
	hedged := next == peer // degenerate replica set: nothing to hedge to
	timer := time.NewTimer(ps.hedgeDelay())
	defer timer.Stop()
	var lastErr error
	for inflight > 0 {
		if hedged {
			select {
			case res := <-ch:
				inflight--
				if res.err == nil {
					return res.pr, nil
				}
				lastErr = res.err
			case <-ctx.Done():
				// Abandoned request: in-flight attempts observe hctx (a
				// child of ctx) and abort; the buffered channel absorbs
				// their results, so nothing leaks.
				if lastErr == nil {
					lastErr = context.Cause(ctx)
				}
				return nil, lastErr
			}
			continue
		}
		select {
		case res := <-ch:
			inflight--
			if res.err == nil {
				return res.pr, nil
			}
			lastErr = res.err
			// The first attempt failed fast (refused connection, open
			// breaker): fire the hedge now instead of waiting out the timer.
			launch(next)
			inflight++
			hedged = true
		case <-timer.C:
			launch(next)
			inflight++
			hedged = true
		}
	}
	return nil, lastErr
}

// replicate fans a successful local onboarding out to one replica-set
// member: the same body, marked X-Shard-Replicate so the member accepts
// it without primary ownership. Unlike client writes, this fan-out is
// retried — re-onboarding an identical payload is idempotent, and the
// common failure is the replica's heavy admission class shedding under
// an onboarding burst (503), which backoff rides out. Still best-effort
// after the budget: the caller logs the failure, and reads for the
// tenant on the lagging replica re-forward to the rest of the replica
// set (read repair) rather than answering 404.
func (ps *peerSet) replicate(ctx context.Context, peer int, key string, body []byte) error {
	return ps.retry.Do(ctx, func(int) error {
		cctx, cancel := context.WithTimeout(ctx, ps.writeTimeout)
		defer cancel()
		r, err := http.NewRequestWithContext(cctx, http.MethodPost, "/datasets", bytes.NewReader(body))
		if err != nil {
			return err
		}
		r.Header.Set("Content-Type", "application/json")
		r.Header.Set("X-Shard-Key", key)
		extra := http.Header{headerReplicate: []string{"1"}}
		pr, err := ps.do(cctx, peer, r, body, extra)
		if err != nil {
			return err
		}
		if pr.status != http.StatusOK {
			return fmt.Errorf("replica answered %d: %s", pr.status, bytes.TrimSpace(pr.body))
		}
		return nil
	})
}

// peerHealthInfo is one row of the /healthz fleet table.
type peerHealthInfo struct {
	URL     string `json:"url"`
	Self    bool   `json:"self,omitempty"`
	Up      bool   `json:"up"`
	Breaker string `json:"breaker"`
	// ConsecFail and LastErr merge the breaker's forward-path evidence
	// with the prober's; whichever failed most recently wins LastErr.
	ConsecFail int    `json:"consec_fail,omitempty"`
	LastErr    string `json:"last_err,omitempty"`
}

// healthTable summarizes the fleet for /healthz: probed up/down, breaker
// state, and the current hedge delay.
func (ps *peerSet) healthTable() map[string]any {
	health := ps.prober.Health()
	peers := make([]peerHealthInfo, ps.sh.count)
	for i := range peers {
		state, consec, lastErr := ps.breakers[i].Snapshot()
		info := peerHealthInfo{
			URL:     ps.sh.peers[i].String(),
			Self:    i == ps.sh.index,
			Up:      health.Up(i),
			Breaker: state.String(),
		}
		if i != ps.sh.index {
			info.ConsecFail = consec
			info.LastErr = lastErr
			if i < len(health.Peers) {
				ph := health.Peers[i]
				if info.LastErr == "" {
					info.LastErr = ph.LastErr
				}
				if ph.ConsecFail > info.ConsecFail {
					info.ConsecFail = ph.ConsecFail
				}
			}
		}
		peers[i] = info
	}
	return map[string]any{
		"peers":          peers,
		"probe_rounds":   health.Round,
		"hedge":          ps.hedge,
		"hedge_delay_ms": ps.hedgeDelay().Milliseconds(),
	}
}
