package main

// Tests for the multi-tenant serving core: per-tenant snapshot isolation,
// budgeted eviction with transparent cold loads, quarantine surviving
// eviction, and coalesced single-query estimates matching solo results.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ce"
	"repro/internal/dataset"
)

// serveWithOpts builds the production handler around an inspectable
// *server, so tests can pin snapshot pointers and cache residency.
func serveWithOpts(t testing.TB, store *ce.Store, opts serveOptions) (*server, *httptest.Server) {
	t.Helper()
	adv, _ := testAdvisor(t, 10)
	s := newServerOpts(adv, store, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// onboardAndTrain onboards d and trains model on it with a small budget.
func onboardAndTrain(t testing.TB, ts *httptest.Server, d *dataset.Dataset, model string) {
	t.Helper()
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(d)); resp.StatusCode != http.StatusOK {
		t.Fatalf("onboarding %s failed: %d %s", d.Name, resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": d.Name, "model": model, "queries": 30, "sample_rows": 80,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("training %s on %s failed: %d %s", model, d.Name, resp.StatusCode, data)
	}
}

// rangeQueryBodies builds n single-table range queries over d's first
// column with distinct upper bounds, so distinct queries have tell-apart
// estimates.
func rangeQueryBodies(d *dataset.Dataset, n int) []map[string]any {
	lo, hi := d.Tables[0].Col(0).MinMax()
	var out []map[string]any
	for i := 0; i < n; i++ {
		out = append(out, map[string]any{
			"tables": []int{0},
			"preds":  []map[string]any{{"table": 0, "col": 0, "lo": lo, "hi": lo + (hi-lo)*int64(i+1)/int64(n)}},
		})
	}
	return out
}

// batchEstimates runs the batch form and returns the estimates.
func batchEstimates(t testing.TB, ts *httptest.Server, ds string, queries []map[string]any) []float64 {
	t.Helper()
	resp, data := postJSON(t, ts, "/estimate", map[string]any{"dataset": ds, "queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate batch on %s returned %d: %s", ds, resp.StatusCode, data)
	}
	var er estimateResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	return er.Estimates
}

// residencyOf reads /models and returns dataset/model -> residency.
func residencyOf(t *testing.T, ts *httptest.Server) (map[string]string, cacheStats) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr modelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, ti := range mr.Trained {
		out[ti.Dataset+"/"+ti.Model] = ti.Residency
	}
	return out, mr.Cache
}

// TestServeTenantSnapshotIsolation pins the multi-tenant contract:
// republishing one tenant (re-onboard or retrain) swaps that tenant's
// snapshot pointer and no other's.
func TestServeTenantSnapshotIsolation(t *testing.T) {
	s, ts := serveWithOpts(t, nil, serveOptions{})
	dA := serveDataset(t, 1, 201)
	dA.Name = "tenantA"
	dB := serveDataset(t, 1, 202)
	dB.Name = "tenantB"
	onboardAndTrain(t, ts, dA, "Postgres")
	onboardAndTrain(t, ts, dB, "Postgres")

	pinA := s.fleet.tenant("tenantA")
	pinB := s.fleet.tenant("tenantB")
	if pinA == nil || pinB == nil {
		t.Fatal("tenants not published")
	}

	// Retrain A: A's snapshot must swap, B's must be the same pointer.
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": "tenantA", "model": "LW-XGB", "queries": 30, "sample_rows": 80,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain failed: %d %s", resp.StatusCode, data)
	}
	if s.fleet.tenant("tenantA") == pinA {
		t.Fatal("retraining tenantA did not publish a new snapshot")
	}
	if s.fleet.tenant("tenantB") != pinB {
		t.Fatal("retraining tenantA swapped tenantB's snapshot")
	}

	// Re-onboard A: same isolation.
	pinA = s.fleet.tenant("tenantA")
	if resp, data := postJSON(t, ts, "/datasets", datasetBody(dA)); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-onboard failed: %d %s", resp.StatusCode, data)
	}
	if s.fleet.tenant("tenantA") == pinA {
		t.Fatal("re-onboarding tenantA did not publish a new snapshot")
	}
	if s.fleet.tenant("tenantB") != pinB {
		t.Fatal("re-onboarding tenantA swapped tenantB's snapshot")
	}
}

// TestServeModelCacheEvictionColdLoadBitIdentical pins the paging
// contract: with a 1-model budget, training a second tenant evicts the
// first tenant's model, and the transparent cold load on its next
// estimate returns bit-identical results to the resident model.
func TestServeModelCacheEvictionColdLoadBitIdentical(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := serveWithOpts(t, store, serveOptions{ModelBudget: 1})
	dA := serveDataset(t, 1, 203)
	dA.Name = "tenantA"
	dB := serveDataset(t, 1, 204)
	dB.Name = "tenantB"

	onboardAndTrain(t, ts, dA, "Postgres")
	qsA := rangeQueryBodies(dA, 6)
	baseline := batchEstimates(t, ts, "tenantA", qsA)

	// Training B blows the 1-model budget: A's model pages out.
	onboardAndTrain(t, ts, dB, "Postgres")
	res, stats := residencyOf(t, ts)
	if res["tenantA/Postgres"] != "evicted" || res["tenantB/Postgres"] != "loaded" {
		t.Fatalf("residency after eviction: %v", res)
	}
	if stats.Evictions == 0 || stats.ResidentModels != 1 {
		t.Fatalf("cache stats after eviction: %+v", stats)
	}

	// The next estimate against A cold-loads and must reproduce the
	// resident model's answers exactly.
	again := batchEstimates(t, ts, "tenantA", qsA)
	if len(again) != len(baseline) {
		t.Fatalf("cold-load returned %d estimates, want %d", len(again), len(baseline))
	}
	for i := range baseline {
		if again[i] != baseline[i] {
			t.Fatalf("estimate %d changed across eviction: %v -> %v", i, baseline[i], again[i])
		}
	}
	if got := s.cache.stats(); got.ColdLoads == 0 {
		t.Fatalf("no cold load recorded: %+v", got)
	}
	// A's cold load displaced B in turn (budget 1): B now pages back too.
	res, _ = residencyOf(t, ts)
	if res["tenantA/Postgres"] != "loaded" || res["tenantB/Postgres"] != "evicted" {
		t.Fatalf("residency after cold load: %v", res)
	}
	if ests := batchEstimates(t, ts, "tenantB", rangeQueryBodies(dB, 3)); len(ests) != 3 {
		t.Fatalf("tenantB estimates after round trip: %v", ests)
	}
}

// TestServeQuarantineSurvivesEviction pins that the quarantine flag lives
// outside residency: an evicted quarantined model must not be resurrected
// by a cold load, and only retraining clears it.
func TestServeQuarantineSurvivesEviction(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := serveWithOpts(t, store, serveOptions{ModelBudget: 1})
	dA := serveDataset(t, 1, 205)
	dA.Name = "tenantA"
	dB := serveDataset(t, 1, 206)
	dB.Name = "tenantB"
	onboardAndTrain(t, ts, dA, "Postgres")

	sm := s.fleet.tenant("tenantA").models["Postgres"]
	sm.quarantined.Store(true) // as an inference panic would

	// Evict it by training another tenant under the 1-model budget.
	onboardAndTrain(t, ts, dB, "Postgres")
	if resident, _ := s.cache.residency(sm); resident {
		t.Fatal("quarantined model was not evicted")
	}
	res, _ := residencyOf(t, ts)
	if res["tenantA/Postgres"] != "quarantined" {
		t.Fatalf("residency of evicted quarantined model: %v", res)
	}

	// Estimates fail fast without paging the model back in.
	before := s.cache.stats().ColdLoads
	resp, data := postJSON(t, ts, "/estimate", map[string]any{
		"dataset": "tenantA", "query": rangeQueryBodies(dA, 1)[0]})
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(data, []byte("quarantined")) {
		t.Fatalf("estimate against quarantined model: %d %s", resp.StatusCode, data)
	}
	if after := s.cache.stats().ColdLoads; after != before {
		t.Fatal("quarantined estimate cold-loaded the model anyway")
	}

	// Retraining replaces the servedModel wholesale and clears the state.
	if resp, data := postJSON(t, ts, "/train", map[string]any{
		"dataset": "tenantA", "model": "Postgres", "queries": 30, "sample_rows": 80,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain failed: %d %s", resp.StatusCode, data)
	}
	if ests := batchEstimates(t, ts, "tenantA", rangeQueryBodies(dA, 2)); len(ests) != 2 {
		t.Fatalf("estimates after retrain: %v", ests)
	}
}

// TestServeCoalescedEstimatesMatchSolo pins the merge-transparency
// contract end to end: concurrent single-query estimates (which the
// server coalesces into shared batches) return exactly the same per-query
// answers as a solo batched call.
func TestServeCoalescedEstimatesMatchSolo(t *testing.T) {
	_, ts := serveWithOpts(t, nil, serveOptions{})
	d := serveDataset(t, 1, 207)
	d.Name = "tenantA"
	onboardAndTrain(t, ts, d, "Postgres")

	const nq = 6
	queries := rangeQueryBodies(d, nq)
	baseline := batchEstimates(t, ts, "tenantA", queries)
	if len(baseline) != nq {
		t.Fatalf("baseline has %d estimates", len(baseline))
	}

	// Storm of concurrent singles: every response must match the solo
	// answer for its own query — merged rides must never leak a
	// neighbor's result into the wrong slot.
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*nq)
	for r := 0; r < rounds; r++ {
		for qi := 0; qi < nq; qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				resp, data := postJSONQuiet(ts, "/estimate", map[string]any{
					"dataset": "tenantA", "query": queries[qi]})
				if resp == nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: bad response %v %s", qi, resp, data)
					return
				}
				var er estimateResponse
				if err := json.Unmarshal(data, &er); err != nil {
					errs <- err
					return
				}
				if er.Estimate != baseline[qi] {
					errs <- fmt.Errorf("query %d: coalesced %v != solo %v", qi, er.Estimate, baseline[qi])
				}
			}(qi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// postJSONQuiet is postJSON without t (usable from goroutines): it
// returns a nil response on transport errors.
func postJSONQuiet(ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return nil, nil
	}
	return resp, out.Bytes()
}

// TestServeEstimateEvictRetrainRace churns estimates against two tenants
// sharing a 1-model cache while one tenant retrains — eviction, cold
// load, supersede, and coalescing all race under -race. Every response
// must be a well-defined outcome (200, or a clean shed/conflict).
func TestServeEstimateEvictRetrainRace(t *testing.T) {
	store, err := ce.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := serveWithOpts(t, store, serveOptions{ModelBudget: 1})
	dA := serveDataset(t, 1, 208)
	dA.Name = "tenantA"
	dB := serveDataset(t, 1, 209)
	dB.Name = "tenantB"
	onboardAndTrain(t, ts, dA, "Postgres")
	onboardAndTrain(t, ts, dB, "Postgres")
	qA := rangeQueryBodies(dA, 1)[0]
	qB := rangeQueryBodies(dB, 1)[0]

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				ds, q := "tenantA", qA
				if (w+i)%2 == 0 {
					ds, q = "tenantB", qB
				}
				resp, data := postJSONQuiet(ts, "/estimate", map[string]any{
					"dataset": ds, "model": "Postgres", "query": q})
				if resp == nil {
					t.Error("estimate transport error")
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
				default:
					t.Errorf("estimate on %s returned %d: %s", ds, resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	// Retrain A mid-storm: each publish supersedes the previous model
	// while estimates may hold it cold-loading or pinned.
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts, "/train", map[string]any{
			"dataset": "tenantA", "model": "Postgres", "queries": 30, "sample_rows": 80, "seed": i,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retrain %d failed: %d %s", i, resp.StatusCode, data)
		}
	}
	wg.Wait()

	// The fleet settles: both tenants answer.
	if ests := batchEstimates(t, ts, "tenantA", rangeQueryBodies(dA, 2)); len(ests) != 2 {
		t.Fatalf("tenantA after storm: %v", ests)
	}
	if ests := batchEstimates(t, ts, "tenantB", rangeQueryBodies(dB, 2)); len(ests) != 2 {
		t.Fatalf("tenantB after storm: %v", ests)
	}
}
