package main

// Native fuzzers for the two request decoders with the largest attack
// surface: the /datasets columnar payload (drives dataset construction
// and validation) and the /estimate payload (drives query validation
// against an onboarded schema). Neither may panic on any input, and
// anything they accept must satisfy the invariants the handlers rely on.
// Corpus seeds live in testdata/fuzz; CI fuzzes each briefly.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dataset"
)

// FuzzDatasetPayload: arbitrary JSON through the strict decoder and
// toDataset must never panic; an accepted dataset passes Validate and
// respects the onboarding limits.
func FuzzDatasetPayload(f *testing.F) {
	f.Add([]byte(`{"name":"db1","tables":[{"name":"t0","pk":0,"cols":[{"name":"c0","data":[1,2,3]},{"name":"c1","data":[4,5,6]}]}]}`))
	f.Add([]byte(`{"name":"db2","tables":[{"cols":[{"data":[1]}]},{"cols":[{"data":[2,3]}]}],"fks":[{"from_table":1,"from_col":0,"to_table":0,"to_col":0}]}`))
	f.Add([]byte(`{"name":"","tables":[]}`))
	f.Add([]byte(`{"name":"x","tables":[{"pk":-7,"cols":[{"data":[0,0,0]}]}]}`))
	f.Add([]byte(`{"tables":[{"cols":[{"data":null}]}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var req datasetRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		d, err := req.toDataset()
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("toDataset accepted a dataset failing Validate: %v\npayload: %s", err, raw)
		}
		if len(d.Tables) == 0 || len(d.Tables) > maxDatasetTables {
			t.Fatalf("toDataset accepted %d tables (limit %d)", len(d.Tables), maxDatasetTables)
		}
		cells := 0
		for _, tb := range d.Tables {
			for _, c := range tb.Cols {
				cells += len(c.Data)
			}
		}
		if cells > maxDatasetCells {
			t.Fatalf("toDataset accepted %d cells (limit %d)", cells, maxDatasetCells)
		}
	})
}

// FuzzEstimatePayload: arbitrary JSON through the strict decoder and
// toQuery against a fixed two-table schema must never panic; the
// handlers index datasets with whatever toQuery accepts.
func FuzzEstimatePayload(f *testing.F) {
	f.Add([]byte(`{"dataset":"db1","query":{"tables":[0],"preds":[{"table":0,"col":1,"lo":1,"hi":5}]}}`))
	f.Add([]byte(`{"dataset":"db1","queries":[{"tables":[0,1],"joins":[{"left_table":1,"left_col":1,"right_table":0,"right_col":0}]}]}`))
	f.Add([]byte(`{"query":{"tables":[2]}}`))
	f.Add([]byte(`{"query":{"tables":[0],"preds":[{"table":0,"col":99}]}}`))
	f.Add([]byte(`{"query":{"tables":[-1]}}`))
	f.Add([]byte(`{"queries":[null]}`))

	// The schema every fuzzed query validates against: two joined tables,
	// shared read-only across iterations (toQuery only reads it).
	d := &dataset.Dataset{
		Name: "db1",
		Tables: []*dataset.Table{
			{Name: "t0", PKCol: 0, Cols: []*dataset.Column{
				dataset.NewColumn("pk", []int64{0, 1, 2, 3}),
				dataset.NewColumn("v", []int64{5, 6, 7, 8}),
			}},
			{Name: "t1", PKCol: -1, Cols: []*dataset.Column{
				dataset.NewColumn("w", []int64{9, 9, 8, 8}),
				dataset.NewColumn("fk", []int64{0, 0, 1, 3}),
			}},
		},
		FKs: []dataset.ForeignKey{{FromTable: 1, FromCol: 1, ToTable: 0, ToCol: 0}},
	}
	if err := d.Validate(); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var req estimateRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		payloads := req.Queries
		if req.Query != nil {
			payloads = append(payloads, req.Query)
		}
		for _, p := range payloads {
			if p == nil {
				continue // the handler 400s null entries before toQuery
			}
			q, err := p.toQuery(d)
			if err != nil {
				continue
			}
			// Accepted queries are safe to index the dataset with — the
			// invariant every estimator relies on.
			for _, ti := range q.Tables {
				if ti < 0 || ti >= len(d.Tables) {
					t.Fatalf("toQuery accepted out-of-range table %d: %s", ti, raw)
				}
			}
			for _, pr := range q.Preds {
				if pr.Table < 0 || pr.Table >= len(d.Tables) ||
					pr.Col < 0 || pr.Col >= d.Tables[pr.Table].NumCols() {
					t.Fatalf("toQuery accepted out-of-range predicate %+v: %s", pr, raw)
				}
			}
		}
	})
}
