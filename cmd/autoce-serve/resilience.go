package main

// The resilience half of the serving front-end: per-endpoint deadlines,
// two-class admission control with a bounded train queue, and panic
// isolation. Policy lives in serveOptions; mechanism (semaphores, panic
// fences, failpoints) lives in internal/resilience.
//
// Endpoint classes and default deadlines:
//
//	endpoint    class                 deadline   over capacity
//	/estimate   cheap, weight=batch   5s         503 after deadline wait
//	/recommend  cheap, weight=1       2s         503 after deadline wait
//	/drift      cheap, weight=1       2s         503 after deadline wait
//	/datasets   heavy                 60s        503 immediately (shed)
//	/adapt      heavy                 60s        503 immediately (shed)
//	/train      queued single-flight  120s       429 + Retry-After (queue
//	                                             full) or 503 (slot wait
//	                                             exceeded deadline)
//	/models, /healthz, /readyz: unclassed, no deadline (O(1) reads)
//
// The cheap and heavy classes use disjoint semaphores: saturating
// training or onboarding can never block an /estimate, which keeps
// serving from the published snapshot — shed-on-overload, not
// queue-and-collapse.
//
// Two serving-path wrinkles compose with the table above:
//
//   - Coalesced /estimate singles (cache.go, resilience.Coalescer) run
//     as one merged batch under a fresh EstimateDeadline and one cheap
//     admission at the merged weight — a merged caller can therefore see
//     the 503 the batch earned, never a wrong answer.
//   - On a sharded instance (shard.go), dataset-addressed endpoints
//     answer 421 Misdirected Request before admission when this shard
//     cannot serve the dataset: reads 421 outside the replica set,
//     writes everywhere but the primary. With peers configured the fleet
//     proxy (proxy.go) forwards instead — reads with breaker/prober
//     failover and bounded retries under PeerTimeout, writes once to the
//     primary under the endpoint's own deadline — and a forward that
//     exhausts every option answers a JSON 502.

import (
	"context"
	"errors"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/resilience"
)

// serveOptions is the resilience policy of one server instance: the
// per-endpoint handler deadlines and the admission-class sizing. The
// zero value of any field falls back to its default, so tests override
// only what they pin down.
type serveOptions struct {
	// QuickDeadline bounds the advisor's O(RCS) snapshot reads
	// (/recommend, /drift).
	QuickDeadline time.Duration
	// EstimateDeadline bounds /estimate; the batch is estimated in chunks
	// with cancellation checks between them, so a huge batch times out
	// instead of wedging a connection.
	EstimateDeadline time.Duration
	// TrainDeadline bounds /train end to end: queue wait, input staging,
	// and the Fit itself (abandoned cooperatively at epoch checkpoints).
	TrainDeadline time.Duration
	// OnboardDeadline bounds /datasets and /adapt.
	OnboardDeadline time.Duration
	// Admission sizes the two admission classes and the train queue.
	Admission resilience.AdmissionConfig
	// ModelBudget caps resident trained models across all tenants, and
	// ModelMemBudget caps their total artifact bytes; crossing either
	// pages least-recently-used models out to the artifact store
	// (cache.go). 0 = unlimited; both require a store to take effect.
	ModelBudget    int
	ModelMemBudget int64
	// NoCoalesce disables merging concurrent single-query /estimate
	// calls for the same served model into batched rides.
	NoCoalesce bool
	// Shard scopes this instance to the datasets it backs in a sharded
	// fleet; nil serves everything (shard.go).
	Shard *sharder
	// PeerTimeout bounds each forwarded read attempt in the fleet proxy
	// (default 5s, matching EstimateDeadline's default); write forwards
	// use the target endpoint's own deadline.
	PeerTimeout time.Duration
	// ProbeInterval and ProbeTimeout tune the peer health prober (0 =
	// the prober's defaults, 2s/1s).
	ProbeInterval, ProbeTimeout time.Duration
	// NoHedge disables the hedged second /estimate forward.
	NoHedge bool
	// ManifestPath is the crash-safe tenant manifest recording onboarded
	// dataset payloads for restart recovery; empty disables it.
	ManifestPath string
}

func defaultServeOptions() serveOptions {
	return serveOptions{
		QuickDeadline:    2 * time.Second,
		EstimateDeadline: 5 * time.Second,
		TrainDeadline:    120 * time.Second,
		OnboardDeadline:  60 * time.Second,
	}
}

// withDefaults fills unset fields.
func (o serveOptions) withDefaults() serveOptions {
	def := defaultServeOptions()
	if o.QuickDeadline <= 0 {
		o.QuickDeadline = def.QuickDeadline
	}
	if o.EstimateDeadline <= 0 {
		o.EstimateDeadline = def.EstimateDeadline
	}
	if o.TrainDeadline <= 0 {
		o.TrainDeadline = def.TrainDeadline
	}
	if o.OnboardDeadline <= 0 {
		o.OnboardDeadline = def.OnboardDeadline
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 5 * time.Second
	}
	return o
}

// withDeadline runs h under a request-context deadline. Handlers observe
// it through r.Context() at their cancellation checkpoints; the deadline
// firing turns into a 503 at whichever checkpoint sees it first.
func withDeadline(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	if d <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// cheap admits h into the cheap class at weight 1 (endpoints whose cost
// does not scale with the payload; /estimate weights by batch size and
// admits itself after decoding).
func (s *server) cheap(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return withDeadline(d, func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.AdmitCheap(r.Context(), 1)
		if err != nil {
			writeOverload(w, err)
			return
		}
		defer release()
		h(w, r)
	})
}

// heavy admits h into the expensive-mutator class, shedding immediately
// when it is saturated — the cheap class keeps serving from the existing
// snapshot while onboarding is maxed out.
func (s *server) heavy(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return withDeadline(d, func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.AdmitHeavy()
		if err != nil {
			writeOverload(w, err)
			return
		}
		defer release()
		h(w, r)
	})
}

// recovered is the outermost middleware: a panic escaping any handler is
// logged with its stack and answered with a 500, and the server keeps
// serving — one poisoned request must not take down every tenant.
// (Model-inference panics are additionally fenced per model, with
// quarantine, in servedModel.estimate; this is the backstop for
// everything else.)
func recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Best-effort: if the handler already wrote headers this
				// write fails silently and the client sees a broken body.
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeOverload maps admission and deadline errors to their transport
// form: a full train queue is 429 + Retry-After (back off and resubmit),
// everything else — class saturation, deadline expiry while waiting — is
// 503 + Retry-After (the server is up, this request was shed).
func writeOverload(w http.ResponseWriter, err error) {
	if errors.Is(err, resilience.ErrTrainQueueFull) {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "train queue is full; retry later")
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "overloaded: "+err.Error())
}

// writeDeadline answers a request whose handler observed its deadline
// (or the client's disconnect) at a cancellation checkpoint.
func writeDeadline(w http.ResponseWriter, what string, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, what+" abandoned: "+err.Error())
}

// handleReadyz is the readiness probe: 200 only while the server wants
// traffic. It flips to 503 the moment shutdown begins, so a load
// balancer drains the instance before the listener closes. /healthz
// remains the liveness probe — it answers 200 for as long as the process
// can serve at all.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}
