package main

import (
	"strings"
	"testing"
)

func TestParseBenchSingleLine(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/nn
BenchmarkMatMulForward-8   	   79440	     15123 ns/op	   16544 B/op	      12 allocs/op
BenchmarkGINLayer-8        	    5000	    231000.5 ns/op
PASS
ok  	repro/internal/nn	2.1s
`
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkMatMulForward":           15123,
		"BenchmarkMatMulForward/B/op":      16544,
		"BenchmarkMatMulForward/allocs/op": 12,
		"BenchmarkGINLayer":                231000.5,
	}
	for k, v := range want {
		if res.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, res.Metrics[k], v)
		}
	}
	if len(res.Metrics) != len(want) {
		t.Errorf("parsed %d metrics, want %d: %v", len(res.Metrics), len(want), res.Metrics)
	}
}

// TestParseBenchSplitRow pins the real output shape of a benchmark that
// prints mid-run: the testing package flushes the name before the body
// runs, the HIST dump lands on the name's line, and the measurements
// arrive on a line of their own.
func TestParseBenchSplitRow(t *testing.T) {
	in := `HIST BenchmarkServeEstimate 452:1
goos: linux
BenchmarkServeEstimate        	HIST BenchmarkServeEstimate 403:1,406:2,447:17
      20	    154950 ns/op	    139263 p50-ns	    200703 p99-ns
BenchmarkServeEstimateBatch64 	HIST BenchmarkServeEstimateBatch64 443:3,498:17
      20	    357394 ns/op	    311295 p50-ns	    507903 p99-ns
PASS
`
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkServeEstimate":               154950,
		"BenchmarkServeEstimate/p50-ns":        139263,
		"BenchmarkServeEstimate/p99-ns":        200703,
		"BenchmarkServeEstimateBatch64":        357394,
		"BenchmarkServeEstimateBatch64/p50-ns": 311295,
		"BenchmarkServeEstimateBatch64/p99-ns": 507903,
	}
	for k, v := range want {
		if res.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, res.Metrics[k], v)
		}
	}
	if len(res.Metrics) != len(want) {
		t.Errorf("parsed %d metrics, want %d — an inline HIST dump leaked a key: %v",
			len(res.Metrics), len(want), res.Metrics)
	}
	// The calibration pass's 1-sample histogram must lose to the full run.
	if got := res.Histograms["BenchmarkServeEstimate"]; got != "403:1,406:2,447:17" {
		t.Errorf("histogram kept %q, want the 20-sample dump", got)
	}
	if got := res.Histograms["BenchmarkServeEstimateBatch64"]; got != "443:3,498:17" {
		t.Errorf("batch histogram %q", got)
	}
}

func TestParseBenchKeepsFastestAcrossCount(t *testing.T) {
	in := `BenchmarkX-8	100	2000 ns/op	500 p99-ns
BenchmarkX-8	100	1000 ns/op	900 p99-ns
BenchmarkX-8	100	3000 ns/op	700 p99-ns
`
	res, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["BenchmarkX"] != 1000 {
		t.Errorf("ns/op = %v, want fastest 1000", res.Metrics["BenchmarkX"])
	}
	if res.Metrics["BenchmarkX/p99-ns"] != 500 {
		t.Errorf("p99 = %v, want lowest 500", res.Metrics["BenchmarkX/p99-ns"])
	}
}

func TestParseBenchRejectsMalformedHist(t *testing.T) {
	if _, err := parseBench(strings.NewReader("HIST BenchmarkX 999999:1\n")); err == nil {
		t.Fatal("out-of-range HIST bucket accepted")
	}
}

// TestGateFailsOnMissingBaseline pins the loud-failure contract: a
// baseline key absent from the run output fails the gate rather than
// passing vacuously.
func TestGateFailsOnMissingBaseline(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 100, "BenchmarkHere": 100}
	got := map[string]float64{"BenchmarkHere": 100}
	var out strings.Builder
	if !gate(&out, base, got, 2.0) {
		t.Fatal("missing baseline benchmark did not fail the gate")
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "BenchmarkGone") {
		t.Errorf("report does not name the missing benchmark:\n%s", out.String())
	}
}

// TestGateP99Regression seeds a >2x tail regression with a flat mean and
// checks the gate trips on the p99 key alone.
func TestGateP99Regression(t *testing.T) {
	base := map[string]float64{
		"BenchmarkServeEstimate":        150000,
		"BenchmarkServeEstimate/p99-ns": 200000,
	}
	healthy := map[string]float64{
		"BenchmarkServeEstimate":        150000,
		"BenchmarkServeEstimate/p99-ns": 390000,
	}
	var out strings.Builder
	if gate(&out, base, healthy, 2.0) {
		t.Fatalf("within-budget tail failed the gate:\n%s", out.String())
	}
	regressed := map[string]float64{
		"BenchmarkServeEstimate":        150000, // mean flat
		"BenchmarkServeEstimate/p99-ns": 450000, // tail 2.25x
	}
	out.Reset()
	if !gate(&out, base, regressed, 2.0) {
		t.Fatal("2.25x p99 regression passed the gate")
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "p99-ns") {
		t.Errorf("report does not flag the p99 key:\n%s", out.String())
	}
}

// TestMergeBaselinePreservesOtherSuites pins the -update fix: refreshing
// from one package's bench output must not drop other packages' gates.
func TestMergeBaselinePreservesOtherSuites(t *testing.T) {
	base := map[string]float64{"BenchmarkNN": 10, "BenchmarkServe": 20}
	run := map[string]float64{"BenchmarkServe": 25, "BenchmarkServe/p99-ns": 40}
	merged := mergeBaseline(base, run)
	want := map[string]float64{"BenchmarkNN": 10, "BenchmarkServe": 25, "BenchmarkServe/p99-ns": 40}
	if len(merged) != len(want) {
		t.Fatalf("merged %v, want %v", merged, want)
	}
	for k, v := range want {
		if merged[k] != v {
			t.Errorf("merged[%s] = %v, want %v", k, merged[k], v)
		}
	}
}
