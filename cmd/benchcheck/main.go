// Command benchcheck converts `go test -bench` output into a JSON
// benchmark artifact and gates it against a checked-in baseline: the build
// fails when any baseline benchmark is missing from the run or regressed
// by more than the allowed factor in ns/op.
//
// CI usage (see .github/workflows/ci.yml):
//
//	go test -run XXX -bench 'MatMul|GIN|Train' -benchtime 100x \
//	    ./internal/nn ./internal/gnn | tee bench.txt
//	go run ./cmd/benchcheck -input bench.txt -output BENCH_nn.json \
//	    -baseline ci/bench_baseline.json -max-regress 2
//
// Refresh the baseline after an intentional performance change with
// -update:
//
//	go run ./cmd/benchcheck -input bench.txt -baseline ci/bench_baseline.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result row of go test -bench output, e.g.
// "BenchmarkMatMulForward-8   	   79440	     15123 ns/op	 16544 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		// go test -count>1 repeats names; keep the fastest run, the
		// standard noise-rejection choice for regression gating.
		if old, ok := out[m[1]]; !ok || ns < old {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func readJSON(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeJSON(path string, results map[string]float64) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	input := flag.String("input", "", "bench output file (default stdin)")
	output := flag.String("output", "", "write parsed results as a JSON artifact")
	baseline := flag.String("baseline", "", "checked-in baseline JSON to gate against")
	maxRegress := flag.Float64("max-regress", 2.0, "fail when ns/op exceeds baseline by this factor")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	if *output != "" {
		if err := writeJSON(*output, results); err != nil {
			fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	if *update {
		if err := writeJSON(*baseline, results); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(results), *baseline)
		return
	}

	base, err := readJSON(*baseline)
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base[name]
		got, ok := results[name]
		if !ok {
			fmt.Printf("MISSING  %-40s baseline %12.0f ns/op, not in this run\n", name, want)
			failed = true
			continue
		}
		ratio := got / want
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s%-40s %12.0f -> %12.0f ns/op (%.2fx)\n", status, name, want, got, ratio)
	}
	for name, got := range results {
		if _, ok := base[name]; !ok {
			fmt.Printf("new      %-40s %31.0f ns/op (no baseline)\n", name, got)
		}
	}
	if failed {
		fmt.Printf("benchcheck: ns/op regression beyond %.2gx baseline\n", *maxRegress)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
