// Command benchcheck converts `go test -bench` output into a JSON
// benchmark artifact and gates it against a checked-in baseline: the build
// fails when any baseline metric is missing from the run or regressed by
// more than the allowed factor.
//
// Beyond ns/op, every extra metric column a benchmark reports (via
// b.ReportMetric — p50-ns, p99-ns, B/op, ...) is parsed into its own
// gateable key, "BenchmarkName/unit"; ns/op keeps the bare benchmark name
// so existing baselines stay valid. A baseline that pins
// "BenchmarkServeEstimate/p99-ns" therefore fails the build on a tail
// regression even when the mean stays flat.
//
// Benchmarks may additionally print full latency histograms as
//
//	HIST <BenchmarkName> <sparse>
//
// lines (internal/latency wire form). These are collected into the JSON
// artifact for offline inspection and summarized in the report; when a
// benchmark prints several (go test runs a calibration pass before the
// measured one, and -count repeats whole runs), the one with the most
// samples wins. A mid-benchmark print also splits the result row — the
// name flushes before the benchmark body runs, the numbers after it
// returns — so the parser accepts the name and its measurements arriving
// on separate lines.
//
// CI usage (see .github/workflows):
//
//	go test -run XXX -bench 'MatMul|GIN|Train' -benchtime 100x \
//	    ./internal/nn ./internal/gnn | tee bench.txt
//	go run ./cmd/benchcheck -input bench.txt -output BENCH_nn.json \
//	    -baseline ci/bench_baseline.json -max-regress 2
//
// Refresh the baseline after an intentional performance change with
// -update, which merges this run's metrics into the baseline — keys from
// benchmarks not in this run survive, so updating from one package's
// bench output cannot silently drop another package's gates:
//
//	go run ./cmd/benchcheck -input bench.txt -baseline ci/bench_baseline.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/latency"
)

// benchName matches the benchmark-name prefix of an output line, with the
// optional -GOMAXPROCS suffix go test appends.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?(?:\s|$)`)

// metricPair matches one "<value> <unit>" measurement column, e.g.
// "15123 ns/op", "16544 B/op", "200703 p99-ns". The iteration count never
// matches: it is followed by another number, not a unit.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?)\s+([A-Za-z][A-Za-z0-9./%_-]*)`)

// histLine matches an embedded histogram dump anywhere in a line; HIST
// lines name their benchmark themselves, so they survive go test's output
// interleaving no matter where they land.
var histLine = regexp.MustCompile(`HIST (Benchmark\S+) ([0-9:,]+)`)

// resultRow matches the measurements-only continuation line that follows
// a split benchmark name: iterations, then at least one metric column.
var resultRow = regexp.MustCompile(`^\s*\d+\s+[0-9.]+ [A-Za-z]`)

// runResults is the parsed form of one bench run and the schema of the
// JSON artifact benchcheck publishes.
type runResults struct {
	// Metrics maps gateable keys to values: the bare benchmark name for
	// ns/op, "name/unit" for every other reported unit.
	Metrics map[string]float64 `json:"metrics"`
	// Histograms maps benchmark names to internal/latency sparse dumps.
	Histograms map[string]string `json:"histograms,omitempty"`
}

func parseBench(r io.Reader) (*runResults, error) {
	res := &runResults{Metrics: map[string]float64{}, Histograms: map[string]string{}}
	histCount := map[string]uint64{}
	pending := "" // benchmark name seen without measurements yet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := histLine.FindStringSubmatch(line); m != nil {
			h, err := latency.ParseSparse(m[2])
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if h.Count() >= histCount[m[1]] {
				histCount[m[1]] = h.Count()
				res.Histograms[m[1]] = m[2]
			}
			// A HIST dump can share a line with a flushed benchmark name;
			// fall through so that name still registers.
		}
		if loc := benchName.FindStringSubmatchIndex(line); loc != nil {
			name := line[loc[2]:loc[3]]
			if recordMetrics(res.Metrics, name, line[loc[1]:]) {
				pending = ""
			} else {
				pending = name // measurements were interrupted; expect them on a later line
			}
			continue
		}
		if pending != "" && resultRow.MatchString(line) {
			recordMetrics(res.Metrics, pending, line)
			pending = ""
		}
	}
	if len(res.Histograms) == 0 {
		res.Histograms = nil
	}
	return res, sc.Err()
}

// recordMetrics parses every metric column in line into metrics under
// name, reporting whether any (i.e. the mandatory ns/op) was found.
// go test -count>1 repeats names; the fastest run wins, the standard
// noise-rejection choice for regression gating.
func recordMetrics(metrics map[string]float64, name, line string) bool {
	// An inline HIST dump is not a measurement column; its benchmark name
	// would otherwise pair a trailing digit with the word HIST.
	if i := strings.Index(line, "HIST "); i >= 0 {
		line = line[:i]
	}
	found := false
	for _, m := range metricPair.FindAllStringSubmatch(line, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		key := name
		if m[2] != "ns/op" {
			key = name + "/" + m[2]
		} else {
			found = true
		}
		if old, ok := metrics[key]; !ok || v < old {
			metrics[key] = v
		}
	}
	return found
}

func readBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// mergeBaseline overlays this run's metrics onto the existing baseline.
// Keys the run did not produce are preserved — a partial bench run must
// never silently drop another suite's gates from the baseline.
func mergeBaseline(base, run map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(base)+len(run))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range run {
		out[k] = v
	}
	return out
}

// gate compares the run against the baseline, printing one line per key,
// and reports whether the build must fail: any baseline key missing from
// the run, or any value beyond maxRegress times its baseline.
func gate(w io.Writer, base, got map[string]float64, maxRegress float64) bool {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-52s baseline %12.0f, not in this run\n", name, want)
			failed = true
			continue
		}
		ratio := have / want
		status := "ok"
		if ratio > maxRegress {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "%-9s%-52s %12.0f -> %12.0f (%.2fx)\n", status, name, want, have, ratio)
	}
	extra := make([]string, 0, len(got))
	for name := range got {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "new      %-52s %28.0f (no baseline)\n", name, got[name])
	}
	return failed
}

func main() {
	input := flag.String("input", "", "bench output file (default stdin)")
	output := flag.String("output", "", "write parsed results as a JSON artifact")
	baseline := flag.String("baseline", "", "checked-in baseline JSON to gate against")
	maxRegress := flag.Float64("max-regress", 2.0, "fail when a metric exceeds baseline by this factor")
	update := flag.Bool("update", false, "merge this run's metrics into the baseline instead of gating")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results.Metrics) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	for _, name := range sortedKeys(results.Histograms) {
		h, _ := latency.ParseSparse(results.Histograms[name])
		fmt.Printf("hist     %-52s %s\n", name, h.Summary())
	}
	if *output != "" {
		if err := writeJSON(*output, results); err != nil {
			fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	if *update {
		base, err := readBaseline(*baseline)
		if err != nil {
			if !os.IsNotExist(err) {
				fatal(err)
			}
			base = map[string]float64{}
		}
		merged := mergeBaseline(base, results.Metrics)
		if err := writeJSON(*baseline, merged); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: merged %d metrics into %s (%d total)\n",
			len(results.Metrics), *baseline, len(merged))
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	if gate(os.Stdout, base, results.Metrics, *maxRegress) {
		fmt.Printf("benchcheck: metric regression beyond %.2gx baseline\n", *maxRegress)
		os.Exit(1)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
