package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the driver with stdout/stderr tees into temp files and
// returns the exit code plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	outB, _ := os.ReadFile(outF.Name())
	errB, _ := os.ReadFile(errF.Name())
	return code, string(outB), string(errB)
}

// TestVetExitsZeroOnRepo is the acceptance gate: the full rule suite over
// the whole module (spelled `./...`, as CI invokes it) reports nothing.
func TestVetExitsZeroOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT source")
	}
	code, out, errOut := capture(t, filepath.Join("..", "..")+"/...")
	if code != 0 {
		t.Fatalf("autoce-vet exited %d on the repo\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Fatalf("exit 0 but findings printed:\n%s", out)
	}
}

// TestListPrintsRuleSet pins the -list surface README links to.
func TestListPrintsRuleSet(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"snapshotonce", "pinpair", "detpath", "ctxloop", "failpointlit"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output lacks %s:\n%s", rule, out)
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	code, _, errOut := capture(t, "-rules", "nosuchrule", filepath.Join("..", ".."))
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown rule") {
		t.Fatalf("stderr lacks diagnosis: %s", errOut)
	}
}

// TestFindingsExitOne drives the driver against a seeded-violation
// testdata module: findings must print in file:line: [rule] message form
// and flip the exit code to 1.
func TestFindingsExitOne(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "analysis", "testdata", "ctxloop")
	code, out, errOut := capture(t, "-rules", "ctxloop", dir)
	if code != 1 {
		t.Fatalf("seeded module exited %d, want 1\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "loop.go:") || !strings.Contains(out, "[ctxloop]") {
		t.Fatalf("findings not in file:line: [rule] message form:\n%s", out)
	}
}
