// Command autoce-vet runs the project-invariant analyzer suite of
// internal/analysis over the module: the concurrency, determinism, and
// lifecycle rules the serving stack documents and race-tests but cannot
// enforce at compile time. It is stdlib-only (go/parser, go/types,
// go/importer resolving the standard library from GOROOT source), so it
// adds no dependency and runs anywhere the toolchain does.
//
// Usage:
//
//	autoce-vet [-rules name,name] [-list] [dir]
//
// dir defaults to the current directory; the module containing it is
// loaded whole (the conventional `autoce-vet ./...` spelling is accepted
// and means the same thing — the rules are module-scoped, so there is
// nothing smaller to analyze). Findings print as
//
//	file:line: [rule] message
//
// and any finding exits 1. Suppress an intentional, understood violation
// with a trailing or preceding-line comment:
//
//	//autoce:ignore rule[,rule...] -- reason
//
// See the internal/analysis package documentation for the rule set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("autoce-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered rules and exit")
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-14s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// "./..." and friends address the whole module; strip the pattern
		// suffix down to its directory.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		fmt.Fprintln(stderr, "autoce-vet: at most one directory argument (the module is analyzed whole)")
		return 2
	}

	var rules []*analysis.Rule
	if *ruleNames != "" {
		for _, name := range strings.Split(*ruleNames, ",") {
			name = strings.TrimSpace(name)
			r := analysis.RuleByName(name)
			if r == nil {
				fmt.Fprintf(stderr, "autoce-vet: unknown rule %q (see -list)\n", name)
				return 2
			}
			rules = append(rules, r)
		}
	}

	mod, err := analysis.Load(dir)
	if err != nil {
		fmt.Fprintf(stderr, "autoce-vet: %v\n", err)
		return 2
	}
	findings := analysis.RunRules(mod, rules)
	for _, f := range findings {
		// Report module-relative paths: stable across checkouts and what
		// CI annotations expect.
		pos := f.Pos
		if rel, rerr := filepath.Rel(mod.Root, pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", pos.Filename, pos.Line, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "autoce-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
