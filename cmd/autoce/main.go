// Command autoce runs the full AutoCE pipeline on synthetic data: generate
// a corpus, label it with the CE testbed, train the advisor with deep
// metric learning and incremental learning, and recommend a CE model for a
// target dataset under the requested accuracy/efficiency weights.
//
// Usage:
//
//	autoce -train 60 -wa 0.9 -target imdb
//	autoce -train 40 -wa 0.5 -target synthetic -target-seed 99
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/testbed"
)

func main() {
	trainN := flag.Int("train", 40, "number of training datasets to generate and label")
	queries := flag.Int("queries", 120, "workload size per dataset")
	wa := flag.Float64("wa", 0.9, "accuracy weight in [0,1]; efficiency weight is 1-wa")
	target := flag.String("target", "synthetic", "target dataset: synthetic, imdb, stats, power")
	targetDir := flag.String("target-dir", "", "load the target dataset from a CSV directory (see dataset.ReadDir) instead of -target")
	targetSeed := flag.Int64("target-seed", 4242, "seed for a synthetic target")
	seed := flag.Int64("seed", 1, "corpus seed")
	fast := flag.Bool("fast", true, "use the reduced training budget for the CE models")
	saveTo := flag.String("save", "", "after training, save the advisor to this file (gob)")
	loadFrom := flag.String("load", "", "skip training and load a saved advisor from this file")
	sampleRows := flag.Int("sample-rows", 0, "estimate the target's features from a reservoir sample of this many rows per table plus KMV distinct sketches (0 = exact; use for very large unbinned user datasets)")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.TrainDatasets = *trainN
	sc.TestDatasets = 0
	sc.Queries = *queries
	sc.Fast = *fast
	sc.Seed = *seed

	featCfg := feature.DefaultConfig()
	var adv *core.Advisor
	if *loadFrom != "" {
		var err error
		adv, err = core.LoadFile(*loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Loaded advisor from %s (%d labeled datasets in the RCS).\n",
			*loadFrom, adv.NumSamples())
	} else {
		fmt.Printf("Generating and labeling %d training datasets (%d queries each)...\n", *trainN, *queries)
		t0 := time.Now()
		ds, err := datagen.GenerateCorpus(*trainN, 5, paramsFor(sc), *seed)
		if err != nil {
			log.Fatal(err)
		}
		labeled, err := experiments.LabelDatasets(ds, sc, featCfg, *seed*3+7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Labeled in %v.\n", time.Since(t0).Round(time.Second))

		samples := make([]*core.Sample, len(labeled))
		for i, ld := range labeled {
			samples[i] = ld.Sample()
		}
		cfg := core.DefaultConfig(featCfg.VertexDim())
		cfg.Epochs = sc.AdvisorEpochs
		fmt.Println("Training the graph encoder with deep metric learning...")
		t0 = time.Now()
		adv, err = core.Train(samples, cfg)
		if err != nil {
			log.Fatal(err)
		}
		report := adv.IncrementalLearn(core.DefaultILConfig())
		fmt.Printf("Trained in %v (incremental learning: %d feedback, %d synthesized).\n",
			time.Since(t0).Round(time.Millisecond), report.FeedbackCount, report.Synthesized)
		if *saveTo != "" {
			if err := adv.SaveFile(*saveTo); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Advisor saved to %s.\n", *saveTo)
		}
	}

	var err error
	var td *dataset.Dataset
	if *targetDir != "" {
		td, err = dataset.ReadDir(*targetDir)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		switch *target {
		case "imdb":
			td = datagen.IMDBLike(*targetSeed)
		case "stats":
			td = datagen.STATSLike(*targetSeed)
		case "power":
			td = datagen.PowerLike(*targetSeed)
		case "synthetic":
			p := paramsFor(sc)
			p.Tables = 3
			p.Seed = *targetSeed
			td, err = datagen.Generate("target", p)
			if err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown target %q", *target)
		}
	}

	// The corpus is always extracted exactly; sampled mode only bounds
	// the cost of featurizing a large user-provided target.
	targetCfg := featCfg
	targetCfg.SampleRows = *sampleRows
	targetCfg.SampleSeed = *seed
	g, err := feature.Extract(td, targetCfg)
	if err != nil {
		log.Fatal(err)
	}
	if adv.DetectDrift(g) {
		fmt.Println("note: target lies outside the trained distribution (drift detected);")
		fmt.Println("      consider online adapting with a labeled sample (see examples/drift).")
	}
	sel0 := time.Now()
	rec := adv.Recommend(g, *wa)
	fmt.Printf("\nTarget %q (%d tables, %d rows), weights: %.0f%% accuracy / %.0f%% efficiency\n",
		td.Name, td.NumTables(), td.TotalRows(), *wa*100, (1-*wa)*100)
	// rec.Model and the score vector index the candidate set; translate
	// through the registry's candidate mapping for display.
	recName, _ := testbed.CandidateModelName(rec.Model)
	fmt.Printf("Recommended CE model: %s (selected in %v)\n",
		recName, time.Since(sel0).Round(time.Microsecond))
	fmt.Println("Averaged neighbor score vector:")
	for i, s := range rec.Scores {
		marker := " "
		if i == rec.Model {
			marker = "*"
		}
		name, _ := testbed.CandidateModelName(i)
		fmt.Printf("  %s %-10s %.3f\n", marker, name, s)
	}
}

func paramsFor(sc experiments.Scale) datagen.Params {
	p := datagen.DefaultParams(sc.Seed)
	if sc.Fast {
		p.MinRows, p.MaxRows = 150, 400
	}
	return p
}
